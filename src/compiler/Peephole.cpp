//===- compiler/Peephole.cpp - Byte-code peephole optimizer ---------------===//
//
// The pass works on a private decoded form (instruction list with jump
// targets as instruction indices), applies the rewrites to a fixpoint by
// marking instructions removed in place, and re-emits bytes with every
// relative offset recomputed. Deleted instructions forward their incoming
// edges to the next live instruction, which is always well-defined: only
// no-ops and unreachable code are deleted, and a live non-terminator
// always has a live successor.
//
//===----------------------------------------------------------------------===//

#include "compiler/Peephole.h"

#include <cstdint>
#include <iterator>

using namespace pecomp;
using namespace pecomp::compiler;
using vm::Op;

namespace {

struct PInsn {
  Op O;
  uint32_t A = 0;     // first operand
  uint32_t B = 0;     // second operand (MakeClosure capture count)
  int32_t Target = -1; // instruction index, for the three jump forms
  bool Removed = false;
};

bool isJump(Op O) {
  return O == Op::Jump || O == Op::JumpIfFalse || O == Op::JumpIfTrue;
}

bool isTerminator(Op O) {
  return O == Op::Jump || O == Op::Return || O == Op::TailCall ||
         O == Op::Halt;
}

size_t insnSize(const PInsn &I) {
  switch (I.O) {
  case Op::Const:
  case Op::LocalRef:
  case Op::FreeRef:
  case Op::GlobalRef:
  case Op::Slide:
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
    return 3;
  case Op::MakeClosure:
    return 5;
  case Op::Call:
  case Op::TailCall:
  case Op::Prim:
    return 2;
  default: // Return, Halt
    return 1;
  }
}

/// Structural decode mirroring vm/Decode.cpp's strictness: any stream the
/// fast-loop decoder would refuse is left to the byte interpreter
/// untouched (returns false). Static table indices are not checked here —
/// the pass never moves or retargets them.
bool decodeAll(const std::vector<uint8_t> &Code, std::vector<PInsn> &Out) {
  if (Code.empty())
    return false;
  std::vector<int32_t> ByteToIndex(Code.size(), -1);
  std::vector<std::pair<size_t, int64_t>> Jumps; // insn index, target byte
  size_t PC = 0;
  while (PC < Code.size()) {
    Op O = static_cast<Op>(Code[PC]);
    PInsn I;
    I.O = O;
    size_t OperandBytes;
    switch (O) {
    case Op::Const:
    case Op::LocalRef:
    case Op::FreeRef:
    case Op::GlobalRef:
    case Op::Slide:
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      OperandBytes = 2;
      break;
    case Op::MakeClosure:
      OperandBytes = 4;
      break;
    case Op::Call:
    case Op::TailCall:
    case Op::Prim:
      OperandBytes = 1;
      break;
    case Op::Return:
    case Op::Halt:
      OperandBytes = 0;
      break;
    default:
      return false; // unknown opcode
    }
    if (PC + 1 + OperandBytes > Code.size())
      return false; // truncated operands

    auto U16At = [&](size_t Off) {
      return static_cast<uint16_t>(Code[Off] | (Code[Off + 1] << 8));
    };
    if (OperandBytes >= 1)
      I.A = OperandBytes == 1 ? Code[PC + 1] : U16At(PC + 1);
    if (OperandBytes == 4)
      I.B = U16At(PC + 3);

    size_t Next = PC + 1 + OperandBytes;
    if (!isTerminator(O) && Next >= Code.size())
      return false; // control can run off the end
    if (isJump(O)) {
      int64_t T = static_cast<int64_t>(Next) +
                  static_cast<int16_t>(static_cast<uint16_t>(I.A));
      if (T < 0 || T >= static_cast<int64_t>(Code.size()))
        return false; // wild jump
      Jumps.emplace_back(Out.size(), T);
    }
    ByteToIndex[PC] = static_cast<int32_t>(Out.size());
    Out.push_back(I);
    PC = Next;
  }
  for (auto [Idx, T] : Jumps) {
    int32_t TI = ByteToIndex[static_cast<size_t>(T)];
    if (TI < 0)
      return false; // mid-instruction target
    Out[Idx].Target = TI;
  }
  return true;
}

/// First live instruction at or after \p I, or -1 past the end.
int32_t nextLive(const std::vector<PInsn> &L, size_t I) {
  for (; I < L.size(); ++I)
    if (!L[I].Removed)
      return static_cast<int32_t>(I);
  return -1;
}

/// Jump threading: retarget any jump through a chain of unconditional
/// Jumps, then fold an unconditional Jump landing on Return/Halt into
/// that terminator.
bool threadJumps(std::vector<PInsn> &L, PeepholeStats &S) {
  bool Changed = false;
  for (PInsn &I : L) {
    if (I.Removed || !isJump(I.O))
      continue;
    int32_t T = I.Target;
    // Deleted targets forward to the next live instruction first.
    T = nextLive(L, static_cast<size_t>(T));
    int Hops = 0;
    while (Hops < 8 && L[T].O == Op::Jump && L[T].Target != T) {
      T = nextLive(L, static_cast<size_t>(L[T].Target));
      ++Hops;
    }
    if (T != I.Target) {
      I.Target = T;
      ++S.ThreadedJumps;
      Changed = true;
    }
    if (I.O == Op::Jump &&
        (L[T].O == Op::Return || L[T].O == Op::Halt)) {
      I.O = L[T].O;
      I.A = 0;
      I.Target = -1;
      ++S.FoldedTerminators;
      Changed = true;
    }
  }
  return Changed;
}

std::vector<bool> jumpTargets(const std::vector<PInsn> &L) {
  std::vector<bool> IsTarget(L.size(), false);
  for (const PInsn &I : L)
    if (!I.Removed && I.Target >= 0)
      IsTarget[static_cast<size_t>(I.Target)] = true;
  return IsTarget;
}

/// Branch inversion: a conditional jump over an unconditional Jump whose
/// taken edge is the Jump's fall-through collapses into the inverted
/// conditional aimed at the Jump's target.
bool invertBranches(std::vector<PInsn> &L, PeepholeStats &S) {
  bool Changed = false;
  std::vector<bool> IsTarget = jumpTargets(L);
  for (size_t I = 0; I < L.size(); ++I) {
    PInsn &C = L[I];
    if (C.Removed || (C.O != Op::JumpIfFalse && C.O != Op::JumpIfTrue))
      continue;
    int32_t J = nextLive(L, I + 1);
    if (J < 0 || L[J].O != Op::Jump || IsTarget[static_cast<size_t>(J)])
      continue;
    int32_t FallThrough = nextLive(L, static_cast<size_t>(J) + 1);
    if (FallThrough < 0 ||
        nextLive(L, static_cast<size_t>(C.Target)) != FallThrough)
      continue;
    C.O = C.O == Op::JumpIfFalse ? Op::JumpIfTrue : Op::JumpIfFalse;
    C.Target = L[J].Target;
    L[J].Removed = true;
    ++S.InvertedBranches;
    Changed = true;
  }
  return Changed;
}

/// Slide cleanup: Slide 0 is a no-op; back-to-back Slides merge (second
/// one must not be a jump target — an incoming edge would skip the first
/// half of the merged drop count).
bool optimizeSlides(std::vector<PInsn> &L, PeepholeStats &S) {
  bool Changed = false;
  std::vector<bool> IsTarget = jumpTargets(L);
  for (size_t I = 0; I < L.size(); ++I) {
    PInsn &C = L[I];
    if (C.Removed || C.O != Op::Slide)
      continue;
    if (C.A == 0) {
      C.Removed = true;
      ++S.DroppedSlides;
      Changed = true;
      continue;
    }
    int32_t J = nextLive(L, I + 1);
    if (J >= 0 && L[J].O == Op::Slide && !IsTarget[static_cast<size_t>(J)] &&
        C.A + L[J].A <= 65535) {
      C.A += L[J].A;
      L[J].Removed = true;
      ++S.CollapsedSlides;
      Changed = true;
    }
  }
  return Changed;
}

/// Unreachable-code removal: anything not reached from instruction 0 via
/// fall-through and jump edges is deleted. Live jumps always target live
/// code afterwards, so re-emission never needs a dangling-edge fixup.
bool removeDead(std::vector<PInsn> &L, PeepholeStats &S) {
  std::vector<bool> Live(L.size(), false);
  std::vector<size_t> Work;
  int32_t Entry = nextLive(L, 0);
  if (Entry >= 0) {
    Live[static_cast<size_t>(Entry)] = true;
    Work.push_back(static_cast<size_t>(Entry));
  }
  auto Visit = [&](int32_t I) {
    if (I >= 0 && !Live[static_cast<size_t>(I)]) {
      Live[static_cast<size_t>(I)] = true;
      Work.push_back(static_cast<size_t>(I));
    }
  };
  while (!Work.empty()) {
    size_t I = Work.back();
    Work.pop_back();
    const PInsn &C = L[I];
    if (!isTerminator(C.O))
      Visit(nextLive(L, I + 1));
    if (C.Target >= 0)
      Visit(nextLive(L, static_cast<size_t>(C.Target)));
  }
  bool Changed = false;
  for (size_t I = 0; I < L.size(); ++I)
    if (!L[I].Removed && !Live[I]) {
      L[I].Removed = true;
      ++S.DeadInsns;
      Changed = true;
    }
  return Changed;
}

/// Re-emits the live instructions; false when a recomputed jump offset
/// does not fit i16 (caller keeps the original bytes).
bool emit(const std::vector<PInsn> &L, std::vector<uint8_t> &Out) {
  std::vector<size_t> NewPC(L.size(), 0);
  size_t PC = 0;
  for (size_t I = 0; I < L.size(); ++I) {
    if (L[I].Removed)
      continue;
    NewPC[I] = PC;
    PC += insnSize(L[I]);
  }
  Out.clear();
  Out.reserve(PC);
  auto PushU16 = [&](uint32_t V) {
    Out.push_back(static_cast<uint8_t>(V & 0xff));
    Out.push_back(static_cast<uint8_t>((V >> 8) & 0xff));
  };
  for (size_t I = 0; I < L.size(); ++I) {
    const PInsn &C = L[I];
    if (C.Removed)
      continue;
    Out.push_back(static_cast<uint8_t>(C.O));
    if (isJump(C.O)) {
      int32_t T = nextLive(L, static_cast<size_t>(C.Target));
      if (T < 0)
        return false; // cannot happen for live jumps; refuse rather than trust
      int64_t Rel = static_cast<int64_t>(NewPC[static_cast<size_t>(T)]) -
                    static_cast<int64_t>(NewPC[I] + 3);
      if (Rel < INT16_MIN || Rel > INT16_MAX)
        return false;
      PushU16(static_cast<uint16_t>(static_cast<int16_t>(Rel)));
      continue;
    }
    switch (insnSize(C)) {
    case 3:
      PushU16(C.A);
      break;
    case 5:
      PushU16(C.A);
      PushU16(C.B);
      break;
    case 2:
      Out.push_back(static_cast<uint8_t>(C.A));
      break;
    default: // Return, Halt: no operands
      break;
    }
  }
  return true;
}

void optimizeObject(vm::CodeObject &C, PeepholeStats &S) {
  std::vector<PInsn> L;
  if (!decodeAll(C.code(), L))
    return; // irregular stream: the byte interpreter owns it, verbatim

  PeepholeStats Local;
  bool Any = false;
  for (int Pass = 0; Pass < 8; ++Pass) {
    bool Changed = false;
    Changed |= threadJumps(L, Local);
    Changed |= invertBranches(L, Local);
    Changed |= optimizeSlides(L, Local);
    Changed |= removeDead(L, Local);
    if (!Changed)
      break;
    Any = true;
  }
  if (!Any)
    return;

  std::vector<uint8_t> NewCode;
  if (!emit(L, NewCode))
    return; // an offset overflowed i16: keep the original
  Local.BytesSaved = C.code().size() - NewCode.size();
  Local.ObjectsChanged = 1;
  S += Local;
  C.mutableCode() = std::move(NewCode);
}

void peepholeRec(vm::CodeObject *C, PeepholeStats &S) {
  // Processed once per object; decoded objects have frozen bytes and are
  // left alone (their children may still be fresh, so recurse anyway).
  if (!C->peepholed() && !C->decodeAttempted()) {
    C->markPeepholed();
    ++S.ObjectsVisited;
    optimizeObject(*C, S);
  }
  for (const vm::CodeObject *Child : C->children())
    // CodeStore hands out mutable objects; CompiledProgram/child tables
    // only carry const views of them.
    peepholeRec(const_cast<vm::CodeObject *>(Child), S);
}

} // namespace

size_t PeepholeStats::addCoverage(support::CoverageMap &M) const {
  const size_t Rules[] = {ThreadedJumps,   FoldedTerminators, InvertedBranches,
                          CollapsedSlides, DroppedSlides,     DeadInsns};
  size_t New = 0;
  for (size_t R = 0; R != std::size(Rules); ++R) {
    if (!Rules[R])
      continue;
    New += M.add(support::CovPeepholeRule, R);
    New += M.add(support::CovPeepholeRule,
                 64 + R * 64 + support::coverageBucket(Rules[R]));
  }
  return New;
}

PeepholeStats compiler::peepholeCode(vm::CodeObject *C) {
  PeepholeStats S;
  peepholeRec(C, S);
  return S;
}

PeepholeStats compiler::peepholeProgram(const CompiledProgram &P) {
  PeepholeStats S;
  for (const auto &[Name, Code] : P.Defs)
    peepholeRec(const_cast<vm::CodeObject *>(Code), S);
  return S;
}
