//===- compiler/Compilators.cpp - Per-construct code generators -----------===//

#include "compiler/Compilators.h"

using namespace pecomp;
using namespace pecomp::compiler;
using vm::Op;

const Fragment *Compilators::pushLiteral(vm::Value V) {
  return Frags.instr(Op::Const, {Operand::lit(V)});
}

const Fragment *Compilators::pushVar(const CEnv &Env, Symbol Name) {
  if (std::optional<Location> Loc = Env.lookup(Name)) {
    if (Loc->K == Location::Kind::Local)
      return Frags.instr(Op::LocalRef, {Operand::imm(Loc->Index)});
    return Frags.instr(Op::FreeRef, {Operand::imm(Loc->Index)});
  }
  return Frags.instr(Op::GlobalRef,
                     {Operand::imm(Globals.lookupOrAdd(Name))});
}

const Fragment *Compilators::pushClosure(const CEnv &Env,
                                         const vm::CodeObject *Child,
                                         std::span<const Symbol> FreeNames) {
  std::vector<const Fragment *> Parts;
  for (Symbol Free : FreeNames)
    Parts.push_back(pushVar(Env, Free));
  Parts.push_back(
      Frags.instr(Op::MakeClosure,
                  {Operand::child(Child),
                   Operand::imm(static_cast<uint16_t>(FreeNames.size()))}));
  return Frags.seq(std::move(Parts));
}

const Fragment *
Compilators::call(const Fragment *CalleePush,
                  std::span<const Fragment *const> ArgPushes, bool Tail) {
  std::vector<const Fragment *> Parts;
  Parts.push_back(CalleePush);
  Parts.insert(Parts.end(), ArgPushes.begin(), ArgPushes.end());
  Parts.push_back(
      Frags.instr(Tail ? Op::TailCall : Op::Call,
                  {Operand::count(static_cast<uint8_t>(ArgPushes.size()))}));
  return Frags.seq(std::move(Parts));
}

const Fragment *
Compilators::primApp(PrimOp Op,
                     std::span<const Fragment *const> ArgPushes) {
  std::vector<const Fragment *> Parts(ArgPushes.begin(), ArgPushes.end());
  Parts.push_back(Frags.instr(vm::Op::Prim, {Operand::prim(Op)}));
  return Frags.seq(std::move(Parts));
}

const Fragment *Compilators::ifThenElse(const Fragment *TestPush,
                                        const Fragment *ThenTail,
                                        const Fragment *ElseTail) {
  LabelId AltLabel = Frags.makeLabel();
  return Frags.seq({
      TestPush,
      Frags.instrUsingLabel(Op::JumpIfFalse, AltLabel),
      ThenTail,
      Frags.attachLabel(AltLabel, ElseTail),
  });
}

const Fragment *Compilators::ifOnStack(const Fragment *ThenTail,
                                       const Fragment *ElseTail) {
  LabelId AltLabel = Frags.makeLabel();
  return Frags.seq({
      Frags.instrUsingLabel(Op::JumpIfFalse, AltLabel),
      ThenTail,
      Frags.attachLabel(AltLabel, ElseTail),
  });
}

const Fragment *Compilators::returnValue(const Fragment *Push) {
  return Frags.seq({Push, Frags.instr(Op::Return)});
}

const Fragment *Compilators::letBinding(const Fragment *InitPush,
                                        const Fragment *BodyTail) {
  return Frags.seq({InitPush, BodyTail});
}

const vm::CodeObject *
Compilators::makeCodeObject(std::string Name, std::span<const Symbol> Params,
                            std::span<const Symbol> FreeNames,
                            const BodyEmitter &EmitBody) {
  CEnv Env;
  uint16_t Slot = 0;
  for (Symbol P : Params)
    Env = Env.bind(EnvArena, P, Location::local(Slot++));
  uint16_t FreeIndex = 0;
  for (Symbol F : FreeNames)
    Env = Env.bind(EnvArena, F, Location::free(FreeIndex++));

  vm::CodeObject *Code =
      Store.create(std::move(Name), static_cast<uint32_t>(Params.size()));
  const Fragment *Body = EmitBody(Env, static_cast<uint32_t>(Params.size()));
  if (!assemble(Body, Code) && OverflowFn.empty())
    OverflowFn = Code->name();
  ++NumCodeObjects;
  return Code;
}
