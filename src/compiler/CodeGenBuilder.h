//===- compiler/CodeGenBuilder.h - Fused residual-code builder --*- C++ -*-===//
///
/// \file
/// The deforested composition of the specializer with the compiler
/// (Sec. 5.4/6.3): a residual-code builder whose constructors are the
/// compiler's compilators partially applied. Where the ordinary builder
/// (spec::SyntaxBuilder) constructs residual ANF *syntax*, this builder's
/// Code values are code-generation combinators awaiting a compile-time
/// environment and stack depth, so specialization produces object code
/// directly — no residual Scheme AST exists on this path (that AST is the
/// intermediate structure deforestation removes).
///
/// The combinators are represented defunctionalized (Reynolds): each Code
/// value is a node recording which compilator was partially applied to
/// which arguments, and emission interprets the node by invoking that
/// compilator — operationally identical to the paper's closure-based
/// `make-residual-*` combinators, but without per-closure allocation
/// costs. Nodes live in the builder's arena.
///
/// The Sec. 6.4 duality (the lambda compilator needs the *names* of its
/// free variables, but fused code pieces are not named syntax) is
/// resolved as the paper suggests: every Code value carries its free
/// residual variable names, maintained compositionally; at emission the
/// lambda compilator splits them into lexical captures and global
/// references exactly as the stand-alone compiler would.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_CODEGENBUILDER_H
#define PECOMP_COMPILER_CODEGENBUILDER_H

#include "compiler/Compilators.h"
#include "compiler/Link.h"

namespace pecomp {
namespace compiler {

/// A defunctionalized code-generation combinator: a compilator partially
/// applied to its residual subterms.
struct CodeNode {
  enum class Kind : uint8_t { Const, Var, Lambda, Let, If, Call, Prim };

  Kind K;
  vm::Value ConstV;               ///< Const
  Symbol Name;                    ///< Var name / Let variable
  PrimOp Op = PrimOp::Add;        ///< Prim
  std::vector<Symbol> Params;     ///< Lambda parameters
  const CodeNode *A = nullptr;    ///< Lambda body / Let init / If test /
                                  ///< Call callee
  const CodeNode *B = nullptr;    ///< Let body / If then
  const CodeNode *C = nullptr;    ///< If else
  std::vector<const CodeNode *> Args; ///< Call / Prim arguments

  /// Lambda nodes only: free residual variables of the abstraction, in
  /// first-occurrence order (matching frontend::freeVars on the
  /// equivalent residual syntax). Computed once when the lambda
  /// combinator is built; inner nodes carry no free-name sets, keeping
  /// combinator construction O(1).
  std::vector<Symbol> FreeNames;
};

/// Free residual variables of \p N in first-occurrence order. Walks the
/// combinator graph, using stored summaries at nested lambdas.
std::vector<Symbol> residualFreeNames(const CodeNode *N);

/// Residual-code builder producing vm::CodeObjects. Models the same
/// builder concept as spec::SyntaxBuilder, so the specializer is
/// instantiated with either (the catamorphism parameterization of
/// Sec. 5).
class CodeGenBuilder {
public:
  /// Cheap handle; null only for default-constructed placeholders.
  using Code = const CodeNode *;

  explicit CodeGenBuilder(Compilators &C)
      : C(C), ConstRoots(C.store().heap()) {}

  Code constant(vm::Value V);
  Code variable(Symbol Name);
  Code lambda(std::vector<Symbol> Params, Code Body);
  Code let(Symbol Var, Code Init, Code Body);
  Code ifExpr(Code Test, Code Then, Code Else);
  Code call(Code Callee, std::vector<Code> Args);
  Code primApp(PrimOp Op, std::vector<Code> Args);

  /// Completes one residual top-level definition: emission happens here —
  /// this is where the generating extension actually generates object
  /// code.
  void define(Symbol Name, std::vector<Symbol> Params, Code Body);

  /// The finished residual program (compiled form).
  CompiledProgram takeProgram() { return std::move(Out); }

  Compilators &compilators() { return C; }

private:
  /// Applying a combinator: emits the code that pushes the value.
  const Fragment *emitPush(Code N, const CEnv &Env, uint32_t Depth);
  /// Applying a combinator in tail position.
  const Fragment *emitTail(Code N, const CEnv &Env, uint32_t Depth);

  Compilators &C;
  Arena NodeArena;
  vm::RootScope ConstRoots; ///< keeps lifted constants alive until emission
  CompiledProgram Out;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_CODEGENBUILDER_H
