//===- bta/Bta.h - Binding-time analysis ------------------------*- C++ -*-===//
///
/// \file
/// The offline binding-time analysis: given a program, an entry function,
/// and a division of its parameters into static and dynamic, computes a
/// congruent two-level annotation (bta/AnnExpr.h) for the whole program.
/// "The binding-time analysis ... can automatically determine a proper
/// staging of computations" (Sec. 1).
///
/// The analysis is monovariant over the two-point lattice S ⊑ D:
///  - one binding time per variable (binders are unique after alpha
///    renaming) and one result binding time per function, computed as a
///    fixpoint; parameter binding times join over all call sites;
///  - direct lambda applications (the image of desugared multi-binding
///    lets) are unfolded (Beta); other lambdas are dynamic (residualized);
///  - impure primitives are always dynamic;
///  - lifts are inserted where a static value meets a dynamic context.
///
/// Specialization points (Memo) are chosen per function: a function is
/// memoized iff it is recursive (lies on a call-graph cycle) and its body
/// contains a dynamic conditional — the classic criterion ensuring that
/// dynamically controlled loops are residualized while statically
/// controlled recursion unfolds. Users can override per function
/// (BtaOptions); the specializer additionally guards unfolding with a
/// depth limit, since fully static recursion may diverge (the PE
/// termination problem the paper cites [60]).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_BTA_BTA_H
#define PECOMP_BTA_BTA_H

#include "bta/AnnExpr.h"
#include "support/Error.h"

#include <unordered_set>

namespace pecomp {
namespace bta {

struct BtaOptions {
  /// Functions that must become specialization points.
  std::unordered_set<Symbol> ForceMemo;
  /// Functions that must be unfolded even if the heuristic would memoize.
  std::unordered_set<Symbol> ForceUnfold;
  /// Parameters (function name, zero-based index) forced dynamic. The
  /// escape hatch for bounded-static-variation problems: a congruent-but-
  /// evolving static parameter (e.g. a counter incremented under dynamic
  /// control) makes every memo key new; generalizing it to dynamic
  /// restores termination.
  std::vector<std::pair<Symbol, unsigned>> ForceDynamic;
};

/// Analyzes \p P for entry point \p Entry whose parameters are divided by
/// \p EntryMask. Annotated syntax is allocated in \p A, which must outlive
/// the returned program. \p P must be assignment-free, alpha-renamed Core
/// Scheme (see frontend::frontendProgram) and must outlive the result.
Result<AnnProgram> analyze(const Program &P, Symbol Entry,
                           const std::vector<BT> &EntryMask, Arena &A,
                           const BtaOptions &Opts = {});

} // namespace bta
} // namespace pecomp

#endif // PECOMP_BTA_BTA_H
