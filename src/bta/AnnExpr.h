//===- bta/AnnExpr.h - Annotated Core Scheme (ACS) --------------*- C++ -*-===//
///
/// \file
/// The two-level syntax the binding-time analysis produces and the
/// specializer consumes — the paper's ACS (Sec. 4): each construct exists
/// in a static variant (executed at specialization time) and a dynamic
/// variant (generating residual code), plus `lift`, which coerces a static
/// first-order value into code.
///
/// Additions over the paper's Fig. 3 core, which it refers to standard
/// treatments for: call annotations. A call to a known top-level function
/// is annotated either Unfold (inline its body at specialization time) or
/// Memo (a specialization point: generate a residual function, memoized on
/// the static argument values).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_BTA_ANNEXPR_H
#define PECOMP_BTA_ANNEXPR_H

#include "syntax/Expr.h"

namespace pecomp {
namespace bta {

/// Binding times: the two-point lattice S ⊑ D.
enum class BT : uint8_t { Static, Dynamic };

inline BT join(BT A, BT B) {
  return (A == BT::Dynamic || B == BT::Dynamic) ? BT::Dynamic : BT::Static;
}

class AnnExpr {
public:
  enum class Kind : uint8_t {
    Const,   ///< static constant
    Var,     ///< variable (environment decides static/dynamic)
    Lift,    ///< static first-order value coerced to residual code
    DLambda, ///< dynamic lambda: residual abstraction
    SLet,    ///< static let: bound at specialization time
    DLet,    ///< dynamic let: names a residual value
    SIf,     ///< static conditional: decided at specialization time
    DIf,     ///< dynamic conditional: residual if
    Beta,    ///< ((lambda ...) args): unfolded at specialization time
    Unfold,  ///< call to a known function, inlined at specialization time
    Memo,    ///< call to a known function, residualized + memoized
    DApp,    ///< dynamic application: residual call
    SPrim,   ///< primitive executed at specialization time
    DPrim,   ///< residual primitive application
  };

  Kind kind() const { return K; }

protected:
  explicit AnnExpr(Kind K) : K(K) {}

private:
  Kind K;
};

class AConst : public AnnExpr {
public:
  explicit AConst(const Datum *Value) : AnnExpr(Kind::Const), Value(Value) {}
  const Datum *value() const { return Value; }
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::Const; }

private:
  const Datum *Value;
};

class AVar : public AnnExpr {
public:
  explicit AVar(Symbol Name) : AnnExpr(Kind::Var), Name(Name) {}
  Symbol name() const { return Name; }
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::Var; }

private:
  Symbol Name;
};

class ALift : public AnnExpr {
public:
  explicit ALift(const AnnExpr *Body) : AnnExpr(Kind::Lift), Body(Body) {}
  const AnnExpr *body() const { return Body; }
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::Lift; }

private:
  const AnnExpr *Body;
};

class ADLambda : public AnnExpr {
public:
  ADLambda(std::vector<Symbol> Params, const AnnExpr *Body)
      : AnnExpr(Kind::DLambda), Params(std::move(Params)), Body(Body) {}
  const std::vector<Symbol> &params() const { return Params; }
  const AnnExpr *body() const { return Body; }
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::DLambda; }

private:
  std::vector<Symbol> Params;
  const AnnExpr *Body;
};

/// Shared shape of the two let variants.
class ALetBase : public AnnExpr {
public:
  Symbol name() const { return Name; }
  const AnnExpr *init() const { return Init; }
  const AnnExpr *body() const { return Body; }
  static bool classof(const AnnExpr *E) {
    return E->kind() == Kind::SLet || E->kind() == Kind::DLet;
  }

protected:
  ALetBase(Kind K, Symbol Name, const AnnExpr *Init, const AnnExpr *Body)
      : AnnExpr(K), Name(Name), Init(Init), Body(Body) {}

private:
  Symbol Name;
  const AnnExpr *Init;
  const AnnExpr *Body;
};

class ASLet : public ALetBase {
public:
  ASLet(Symbol Name, const AnnExpr *Init, const AnnExpr *Body)
      : ALetBase(Kind::SLet, Name, Init, Body) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::SLet; }
};

class ADLet : public ALetBase {
public:
  ADLet(Symbol Name, const AnnExpr *Init, const AnnExpr *Body)
      : ALetBase(Kind::DLet, Name, Init, Body) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::DLet; }
};

/// Shared shape of the two conditional variants.
class AIfBase : public AnnExpr {
public:
  const AnnExpr *test() const { return Test; }
  const AnnExpr *thenBranch() const { return Then; }
  const AnnExpr *elseBranch() const { return Else; }
  static bool classof(const AnnExpr *E) {
    return E->kind() == Kind::SIf || E->kind() == Kind::DIf;
  }

protected:
  AIfBase(Kind K, const AnnExpr *Test, const AnnExpr *Then,
          const AnnExpr *Else)
      : AnnExpr(K), Test(Test), Then(Then), Else(Else) {}

private:
  const AnnExpr *Test;
  const AnnExpr *Then;
  const AnnExpr *Else;
};

class ASIf : public AIfBase {
public:
  ASIf(const AnnExpr *Test, const AnnExpr *Then, const AnnExpr *Else)
      : AIfBase(Kind::SIf, Test, Then, Else) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::SIf; }
};

class ADIf : public AIfBase {
public:
  ADIf(const AnnExpr *Test, const AnnExpr *Then, const AnnExpr *Else)
      : AIfBase(Kind::DIf, Test, Then, Else) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::DIf; }
};

class ABeta : public AnnExpr {
public:
  ABeta(std::vector<Symbol> Params, std::vector<const AnnExpr *> Args,
        const AnnExpr *Body)
      : AnnExpr(Kind::Beta), Params(std::move(Params)),
        Args(std::move(Args)), Body(Body) {}
  const std::vector<Symbol> &params() const { return Params; }
  const std::vector<const AnnExpr *> &args() const { return Args; }
  const AnnExpr *body() const { return Body; }
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::Beta; }

private:
  std::vector<Symbol> Params;
  std::vector<const AnnExpr *> Args;
  const AnnExpr *Body;
};

/// Shared shape of the two known-call variants.
class ACallBase : public AnnExpr {
public:
  Symbol callee() const { return Callee; }
  const std::vector<const AnnExpr *> &args() const { return Args; }
  static bool classof(const AnnExpr *E) {
    return E->kind() == Kind::Unfold || E->kind() == Kind::Memo;
  }

protected:
  ACallBase(Kind K, Symbol Callee, std::vector<const AnnExpr *> Args)
      : AnnExpr(K), Callee(Callee), Args(std::move(Args)) {}

private:
  Symbol Callee;
  std::vector<const AnnExpr *> Args;
};

class AUnfold : public ACallBase {
public:
  AUnfold(Symbol Callee, std::vector<const AnnExpr *> Args)
      : ACallBase(Kind::Unfold, Callee, std::move(Args)) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::Unfold; }
};

class AMemo : public ACallBase {
public:
  AMemo(Symbol Callee, std::vector<const AnnExpr *> Args)
      : ACallBase(Kind::Memo, Callee, std::move(Args)) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::Memo; }
};

class ADApp : public AnnExpr {
public:
  ADApp(const AnnExpr *Callee, std::vector<const AnnExpr *> Args)
      : AnnExpr(Kind::DApp), Callee(Callee), Args(std::move(Args)) {}
  const AnnExpr *callee() const { return Callee; }
  const std::vector<const AnnExpr *> &args() const { return Args; }
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::DApp; }

private:
  const AnnExpr *Callee;
  std::vector<const AnnExpr *> Args;
};

/// Shared shape of the two primitive variants.
class APrimBase : public AnnExpr {
public:
  PrimOp op() const { return Op; }
  const std::vector<const AnnExpr *> &args() const { return Args; }
  static bool classof(const AnnExpr *E) {
    return E->kind() == Kind::SPrim || E->kind() == Kind::DPrim;
  }

protected:
  APrimBase(Kind K, PrimOp Op, std::vector<const AnnExpr *> Args)
      : AnnExpr(K), Op(Op), Args(std::move(Args)) {}

private:
  PrimOp Op;
  std::vector<const AnnExpr *> Args;
};

class ASPrim : public APrimBase {
public:
  ASPrim(PrimOp Op, std::vector<const AnnExpr *> Args)
      : APrimBase(Kind::SPrim, Op, std::move(Args)) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::SPrim; }
};

class ADPrim : public APrimBase {
public:
  ADPrim(PrimOp Op, std::vector<const AnnExpr *> Args)
      : APrimBase(Kind::DPrim, Op, std::move(Args)) {}
  static bool classof(const AnnExpr *E) { return E->kind() == Kind::DPrim; }
};

/// An annotated top-level definition.
struct AnnDefinition {
  Symbol Name;
  std::vector<Symbol> Params;
  std::vector<BT> ParamBTs;
  const AnnExpr *Body = nullptr;
  BT BodyBT = BT::Static;
  bool IsMemoPoint = false;
};

/// The annotated program: the output of the BTA, the input of the
/// specializer.
struct AnnProgram {
  std::vector<AnnDefinition> Defs;
  Symbol Entry;

  const AnnDefinition *find(Symbol Name) const {
    for (const AnnDefinition &D : Defs)
      if (D.Name == Name)
        return &D;
    return nullptr;
  }

  /// Renders the two-level program with the paper's notation (liftD,
  /// ifD, letD, underlined calls). For tests and debugging.
  std::string print() const;
};

} // namespace bta
} // namespace pecomp

#endif // PECOMP_BTA_ANNEXPR_H
