//===- bta/AnnPrint.cpp - Printing annotated programs ----------------------===//
///
/// \file
/// Renders two-level programs in the paper's notation: dynamic constructs
/// carry a D suffix (ifD, letD, lambdaD, opD), static-time calls print as
/// (unfold f ...) and specialization points as (memo f ...).
///
//===----------------------------------------------------------------------===//

#include "bta/AnnExpr.h"

#include "support/Casting.h"

using namespace pecomp;
using namespace pecomp::bta;

namespace {

void printAnn(const AnnExpr *E, std::string &Out) {
  switch (E->kind()) {
  case AnnExpr::Kind::Const: {
    const Datum *D = cast<AConst>(E)->value();
    if (D->kind() == Datum::Kind::Symbol || D->isPair() || D->isNil())
      Out.push_back('\'');
    Out += D->write();
    return;
  }
  case AnnExpr::Kind::Var:
    Out += cast<AVar>(E)->name().str();
    return;
  case AnnExpr::Kind::Lift:
    Out += "(lift ";
    printAnn(cast<ALift>(E)->body(), Out);
    Out.push_back(')');
    return;
  case AnnExpr::Kind::DLambda: {
    const auto *L = cast<ADLambda>(E);
    Out += "(lambdaD (";
    for (size_t I = 0; I != L->params().size(); ++I) {
      if (I)
        Out.push_back(' ');
      Out += L->params()[I].str();
    }
    Out += ") ";
    printAnn(L->body(), Out);
    Out.push_back(')');
    return;
  }
  case AnnExpr::Kind::SLet:
  case AnnExpr::Kind::DLet: {
    const auto *L = cast<ALetBase>(E);
    Out += E->kind() == AnnExpr::Kind::SLet ? "(let (" : "(letD (";
    Out += L->name().str();
    Out.push_back(' ');
    printAnn(L->init(), Out);
    Out += ") ";
    printAnn(L->body(), Out);
    Out.push_back(')');
    return;
  }
  case AnnExpr::Kind::SIf:
  case AnnExpr::Kind::DIf: {
    const auto *I = cast<AIfBase>(E);
    Out += E->kind() == AnnExpr::Kind::SIf ? "(if " : "(ifD ";
    printAnn(I->test(), Out);
    Out.push_back(' ');
    printAnn(I->thenBranch(), Out);
    Out.push_back(' ');
    printAnn(I->elseBranch(), Out);
    Out.push_back(')');
    return;
  }
  case AnnExpr::Kind::Beta: {
    const auto *B = cast<ABeta>(E);
    Out += "((lambda (";
    for (size_t I = 0; I != B->params().size(); ++I) {
      if (I)
        Out.push_back(' ');
      Out += B->params()[I].str();
    }
    Out += ") ";
    printAnn(B->body(), Out);
    Out.push_back(')');
    for (const AnnExpr *Arg : B->args()) {
      Out.push_back(' ');
      printAnn(Arg, Out);
    }
    Out.push_back(')');
    return;
  }
  case AnnExpr::Kind::Unfold:
  case AnnExpr::Kind::Memo: {
    const auto *C = cast<ACallBase>(E);
    Out += E->kind() == AnnExpr::Kind::Unfold ? "(unfold " : "(memo ";
    Out += C->callee().str();
    for (const AnnExpr *Arg : C->args()) {
      Out.push_back(' ');
      printAnn(Arg, Out);
    }
    Out.push_back(')');
    return;
  }
  case AnnExpr::Kind::DApp: {
    const auto *C = cast<ADApp>(E);
    Out += "(appD ";
    printAnn(C->callee(), Out);
    for (const AnnExpr *Arg : C->args()) {
      Out.push_back(' ');
      printAnn(Arg, Out);
    }
    Out.push_back(')');
    return;
  }
  case AnnExpr::Kind::SPrim:
  case AnnExpr::Kind::DPrim: {
    const auto *Prim = cast<APrimBase>(E);
    Out.push_back('(');
    Out += primName(Prim->op());
    if (E->kind() == AnnExpr::Kind::DPrim)
      Out += "D";
    for (const AnnExpr *Arg : Prim->args()) {
      Out.push_back(' ');
      printAnn(Arg, Out);
    }
    Out.push_back(')');
    return;
  }
  }
}

} // namespace

std::string AnnProgram::print() const {
  std::string Out;
  for (const AnnDefinition &D : Defs) {
    Out += D.IsMemoPoint ? "(defineM (" : "(define (";
    Out += D.Name.str();
    for (size_t I = 0; I != D.Params.size(); ++I) {
      Out.push_back(' ');
      Out += D.Params[I].str();
      Out += D.ParamBTs[I] == BT::Static ? ":S" : ":D";
    }
    Out += ") ";
    printAnn(D.Body, Out);
    Out += ")\n";
  }
  return Out;
}
