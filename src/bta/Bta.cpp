//===- bta/Bta.cpp - Binding-time analysis ---------------------------------===//

#include "bta/Bta.h"

#include "support/Casting.h"

#include <unordered_map>

using namespace pecomp;
using namespace pecomp::bta;

namespace {

class Analyzer {
public:
  Analyzer(const Program &P, Symbol Entry, const std::vector<BT> &EntryMask,
           Arena &A, const BtaOptions &Opts)
      : P(P), Entry(Entry), EntryMask(EntryMask), A(A), Opts(Opts) {}

  Result<AnnProgram> run() {
    const Definition *EntryDef = P.find(Entry);
    if (!EntryDef)
      return makeError("entry function '" + Entry.str() + "' is not defined");
    if (EntryDef->Fn->params().size() != EntryMask.size())
      return makeError("entry division has " +
                       std::to_string(EntryMask.size()) + " entries but '" +
                       Entry.str() + "' has " +
                       std::to_string(EntryDef->Fn->params().size()) +
                       " parameters");
    for (const Definition &D : P.Defs)
      DefIndex.emplace(D.Name, &D);

    // Seed the entry division.
    for (size_t I = 0; I != EntryMask.size(); ++I)
      joinVar(EntryDef->Fn->params()[I], EntryMask[I]);

    // User-forced generalizations.
    for (const auto &[Fn, Index] : Opts.ForceDynamic) {
      const Definition *D = P.find(Fn);
      if (!D)
        return makeError("ForceDynamic names unknown function '" + Fn.str() +
                         "'");
      if (Index >= D->Fn->params().size())
        return makeError("ForceDynamic index " + std::to_string(Index) +
                         " out of range for '" + Fn.str() + "'");
      joinVar(D->Fn->params()[Index], BT::Dynamic);
    }

    computeRecursive();

    // Alternate binding-time fixpoints with memoization-point selection
    // until both stabilize. Both only grow, so this terminates.
    Memo = Opts.ForceMemo;
    for (Symbol F : Opts.ForceUnfold)
      Memo.erase(F);
    for (;;) {
      if (auto Err = fixpoint())
        return *Err;
      size_t Before = Memo.size();
      for (const Definition &D : P.Defs) {
        if (Opts.ForceUnfold.count(D.Name))
          continue;
        if (Recursive.count(D.Name) && DynIf.count(D.Name))
          Memo.insert(D.Name);
      }
      if (Memo.size() == Before)
        break;
    }

    return annotateProgram();
  }

private:
  // -- Fixpoint over binding times -------------------------------------------

  BT varBT(Symbol S) const {
    auto It = VarBTs.find(S);
    return It == VarBTs.end() ? BT::Static : It->second;
  }

  void joinVar(Symbol S, BT T) {
    BT &Slot = VarBTs.try_emplace(S, BT::Static).first->second;
    BT New = join(Slot, T);
    if (New != Slot) {
      Slot = New;
      Changed = true;
    }
  }

  BT resultBT(Symbol F) const {
    auto It = ResultBTs.find(F);
    return It == ResultBTs.end() ? BT::Static : It->second;
  }

  void joinResult(Symbol F, BT T) {
    BT &Slot = ResultBTs.try_emplace(F, BT::Static).first->second;
    BT New = join(Slot, T);
    if (New != Slot) {
      Slot = New;
      Changed = true;
    }
  }

  std::optional<Error> fixpoint() {
    do {
      Changed = false;
      FirstError.reset();
      DynIf.clear();
      for (const Definition &D : P.Defs) {
        BT Body = analyze(D.Fn->body(), D.Name);
        joinResult(D.Name, Body);
      }
      if (FirstError)
        return FirstError;
    } while (Changed);
    return std::nullopt;
  }

  void report(std::string Message, const Expr *At) {
    if (!FirstError)
      FirstError = Error(std::move(Message), At->loc());
  }

  /// True if \p Name refers to a top-level definition (locals never
  /// collide after alpha renaming).
  const Definition *asGlobal(Symbol Name) const {
    auto It = DefIndex.find(Name);
    return It == DefIndex.end() ? nullptr : It->second;
  }

  BT analyze(const Expr *E, Symbol InFn) {
    switch (E->kind()) {
    case Expr::Kind::Const:
      return BT::Static;
    case Expr::Kind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      if (asGlobal(Name)) {
        report("top-level function '" + Name.str() +
                   "' used as a value; first-class references to "
                   "definitions are not supported by the BTA",
               E);
        return BT::Dynamic;
      }
      return varBT(Name);
    }
    case Expr::Kind::Lambda: {
      // A lambda in value position is residualized: its parameters are
      // dynamic, and its body is analyzed under that assumption.
      const auto *L = cast<LambdaExpr>(E);
      for (Symbol Param : L->params())
        joinVar(Param, BT::Dynamic);
      analyze(L->body(), InFn);
      return BT::Dynamic;
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      joinVar(L->name(), analyze(L->init(), InFn));
      return analyze(L->body(), InFn);
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      BT Test = analyze(I->test(), InFn);
      BT Branches = join(analyze(I->thenBranch(), InFn),
                         analyze(I->elseBranch(), InFn));
      if (Test == BT::Dynamic) {
        DynIf.insert(InFn);
        return BT::Dynamic;
      }
      return Branches;
    }
    case Expr::Kind::App: {
      const auto *App = cast<AppExpr>(E);
      // Direct lambda application: unfolded; parameters take the argument
      // binding times.
      if (const auto *L = dyn_cast<LambdaExpr>(App->callee())) {
        if (L->params().size() != App->args().size()) {
          report("direct lambda application with wrong arity", E);
          return BT::Dynamic;
        }
        for (size_t I = 0; I != App->args().size(); ++I)
          joinVar(L->params()[I], analyze(App->args()[I], InFn));
        return analyze(L->body(), InFn);
      }
      // Call to a known top-level function.
      if (const auto *V = dyn_cast<VarExpr>(App->callee())) {
        if (const Definition *Callee = asGlobal(V->name())) {
          if (Callee->Fn->params().size() != App->args().size()) {
            report("call to '" + V->name().str() + "' with " +
                       std::to_string(App->args().size()) +
                       " argument(s); expected " +
                       std::to_string(Callee->Fn->params().size()),
                   E);
            return BT::Dynamic;
          }
          for (size_t I = 0; I != App->args().size(); ++I)
            joinVar(Callee->Fn->params()[I], analyze(App->args()[I], InFn));
          return Memo.count(V->name()) ? BT::Dynamic
                                       : resultBT(V->name());
        }
      }
      // Dynamic application.
      analyze(App->callee(), InFn);
      for (const Expr *Arg : App->args())
        analyze(Arg, InFn);
      return BT::Dynamic;
    }
    case Expr::Kind::PrimApp: {
      const auto *Prim = cast<PrimAppExpr>(E);
      BT Args = BT::Static;
      for (const Expr *Arg : Prim->args())
        Args = join(Args, analyze(Arg, InFn));
      if (!primIsPure(Prim->op()))
        return BT::Dynamic;
      return Args;
    }
    case Expr::Kind::Set:
      report("set! must be eliminated before binding-time analysis", E);
      return BT::Dynamic;
    }
    return BT::Dynamic;
  }

  // -- Call graph -------------------------------------------------------------

  void collectCallees(const Expr *E, std::unordered_set<Symbol> &Out) {
    switch (E->kind()) {
    case Expr::Kind::Const:
    case Expr::Kind::Var:
      return;
    case Expr::Kind::Lambda:
      collectCallees(cast<LambdaExpr>(E)->body(), Out);
      return;
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      collectCallees(L->init(), Out);
      collectCallees(L->body(), Out);
      return;
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      collectCallees(I->test(), Out);
      collectCallees(I->thenBranch(), Out);
      collectCallees(I->elseBranch(), Out);
      return;
    }
    case Expr::Kind::App: {
      const auto *App = cast<AppExpr>(E);
      if (const auto *V = dyn_cast<VarExpr>(App->callee()))
        if (asGlobal(V->name()))
          Out.insert(V->name());
      collectCallees(App->callee(), Out);
      for (const Expr *Arg : App->args())
        collectCallees(Arg, Out);
      return;
    }
    case Expr::Kind::PrimApp:
      for (const Expr *Arg : cast<PrimAppExpr>(E)->args())
        collectCallees(Arg, Out);
      return;
    case Expr::Kind::Set:
      collectCallees(cast<SetExpr>(E)->value(), Out);
      return;
    }
  }

  /// Marks every function that can reach itself through the call graph.
  void computeRecursive() {
    std::unordered_map<Symbol, std::unordered_set<Symbol>> Callees;
    for (const Definition &D : P.Defs)
      collectCallees(D.Fn->body(), Callees[D.Name]);
    for (const Definition &D : P.Defs) {
      // DFS from D's callees looking for D.
      std::vector<Symbol> Stack(Callees[D.Name].begin(),
                                Callees[D.Name].end());
      std::unordered_set<Symbol> Seen;
      bool Found = false;
      while (!Stack.empty() && !Found) {
        Symbol F = Stack.back();
        Stack.pop_back();
        if (F == D.Name) {
          Found = true;
          break;
        }
        if (!Seen.insert(F).second)
          continue;
        for (Symbol G : Callees[F])
          Stack.push_back(G);
      }
      if (Found)
        Recursive.insert(D.Name);
    }
  }

  // -- Annotation --------------------------------------------------------------

  struct Annotated {
    const AnnExpr *E;
    BT T;
  };

  Annotated coerceDyn(Annotated In) {
    if (In.T == BT::Static)
      return {A.create<ALift>(In.E), BT::Dynamic};
    return In;
  }

  Annotated annotate(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Const:
      return {A.create<AConst>(cast<ConstExpr>(E)->value()), BT::Static};
    case Expr::Kind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      return {A.create<AVar>(Name), varBT(Name)};
    }
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      Annotated Body = coerceDyn(annotate(L->body()));
      return {A.create<ADLambda>(L->params(), Body.E), BT::Dynamic};
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      Annotated Init = annotate(L->init());
      Annotated Body = annotate(L->body());
      if (Init.T == BT::Static)
        return {A.create<ASLet>(L->name(), Init.E, Body.E), Body.T};
      return {A.create<ADLet>(L->name(), Init.E, Body.E), Body.T};
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      Annotated Test = annotate(I->test());
      Annotated Then = annotate(I->thenBranch());
      Annotated Else = annotate(I->elseBranch());
      if (Test.T == BT::Static)
        return {A.create<ASIf>(Test.E, Then.E, Else.E),
                join(Then.T, Else.T)};
      return {A.create<ADIf>(Test.E, coerceDyn(Then).E, coerceDyn(Else).E),
              BT::Dynamic};
    }
    case Expr::Kind::App: {
      const auto *App = cast<AppExpr>(E);
      if (const auto *L = dyn_cast<LambdaExpr>(App->callee())) {
        std::vector<const AnnExpr *> Args;
        for (const Expr *Arg : App->args())
          Args.push_back(annotate(Arg).E);
        Annotated Body = annotate(L->body());
        return {A.create<ABeta>(L->params(), std::move(Args), Body.E),
                Body.T};
      }
      if (const auto *V = dyn_cast<VarExpr>(App->callee())) {
        if (const Definition *Callee = asGlobal(V->name())) {
          bool IsMemo = Memo.count(V->name()) != 0;
          std::vector<const AnnExpr *> Args;
          for (size_t I = 0; I != App->args().size(); ++I) {
            Annotated Arg = annotate(App->args()[I]);
            BT ParamT = varBT(Callee->Fn->params()[I]);
            if (IsMemo && ParamT == BT::Dynamic)
              Arg = coerceDyn(Arg); // passed as a residual argument
            assert(!(ParamT == BT::Static && Arg.T == BT::Dynamic) &&
                   "binding-time congruence violated at call site");
            Args.push_back(Arg.E);
          }
          if (IsMemo)
            return {A.create<AMemo>(V->name(), std::move(Args)),
                    BT::Dynamic};
          return {A.create<AUnfold>(V->name(), std::move(Args)),
                  resultBT(V->name())};
        }
      }
      Annotated Callee = coerceDyn(annotate(App->callee()));
      std::vector<const AnnExpr *> Args;
      for (const Expr *Arg : App->args())
        Args.push_back(coerceDyn(annotate(Arg)).E);
      return {A.create<ADApp>(Callee.E, std::move(Args)), BT::Dynamic};
    }
    case Expr::Kind::PrimApp: {
      const auto *Prim = cast<PrimAppExpr>(E);
      std::vector<Annotated> Args;
      BT ArgsT = BT::Static;
      for (const Expr *Arg : Prim->args()) {
        Args.push_back(annotate(Arg));
        ArgsT = join(ArgsT, Args.back().T);
      }
      std::vector<const AnnExpr *> Anns;
      if (primIsPure(Prim->op()) && ArgsT == BT::Static) {
        for (const Annotated &Arg : Args)
          Anns.push_back(Arg.E);
        return {A.create<ASPrim>(Prim->op(), std::move(Anns)), BT::Static};
      }
      for (Annotated &Arg : Args)
        Anns.push_back(coerceDyn(Arg).E);
      return {A.create<ADPrim>(Prim->op(), std::move(Anns)), BT::Dynamic};
    }
    case Expr::Kind::Set:
      break;
    }
    assert(false && "unexpected expression in annotation");
    return {nullptr, BT::Dynamic};
  }

  Result<AnnProgram> annotateProgram() {
    AnnProgram Out;
    Out.Entry = Entry;
    for (const Definition &D : P.Defs) {
      AnnDefinition AD;
      AD.Name = D.Name;
      AD.Params = D.Fn->params();
      for (Symbol Param : AD.Params)
        AD.ParamBTs.push_back(varBT(Param));
      Annotated Body = annotate(D.Fn->body());
      AD.Body = Body.E;
      AD.BodyBT = Body.T;
      AD.IsMemoPoint = Memo.count(D.Name) != 0;
      Out.Defs.push_back(std::move(AD));
    }
    return Out;
  }

  const Program &P;
  Symbol Entry;
  const std::vector<BT> &EntryMask;
  Arena &A;
  const BtaOptions &Opts;

  std::unordered_map<Symbol, const Definition *> DefIndex;
  std::unordered_map<Symbol, BT> VarBTs;
  std::unordered_map<Symbol, BT> ResultBTs;
  std::unordered_set<Symbol> Memo;
  std::unordered_set<Symbol> Recursive;
  std::unordered_set<Symbol> DynIf;
  std::optional<Error> FirstError;
  bool Changed = false;
};

} // namespace

Result<AnnProgram> bta::analyze(const Program &P, Symbol Entry,
                                const std::vector<BT> &EntryMask, Arena &A,
                                const BtaOptions &Opts) {
  Analyzer An(P, Entry, EntryMask, A, Opts);
  return An.run();
}
