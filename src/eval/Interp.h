//===- eval/Interp.h - Reference interpreter --------------------*- C++ -*-===//
///
/// \file
/// A direct (environment-passing) interpreter for Core Scheme. It defines
/// the reference semantics: the compilers, the specializer, and the fused
/// RTCG path are all differentially tested against it.
///
/// Environments are association lists built from runtime pairs, and
/// interpreter closures are heap objects, so the garbage collector sees
/// everything; temporaries held in C++ locals are protected through a
/// shadow stack.
///
/// Calls in tail position iterate rather than recurse, so interpreted loops
/// run in constant C++ stack space.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_EVAL_INTERP_H
#define PECOMP_EVAL_INTERP_H

#include "support/Error.h"
#include "syntax/Expr.h"
#include "vm/Heap.h"

#include <unordered_map>

namespace pecomp {
namespace eval {

class Interp : public vm::RootProvider {
public:
  /// Binds every definition of \p P as a global procedure. The program must
  /// outlive the interpreter.
  Interp(vm::Heap &H, const Program &P);
  ~Interp() override;
  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  /// Applies the top-level function \p Name to \p Args.
  Result<vm::Value> callFunction(Symbol Name,
                                 std::span<const vm::Value> Args);

  /// Evaluates an expression in the empty local environment (for tests).
  Result<vm::Value> evalExpr(const Expr *E);

  void traceRoots(vm::RootVisitor &Visitor) override;

  vm::Heap &heap() { return H; }

private:
  Result<vm::Value> eval(const Expr *E, vm::Value Env);
  Result<vm::Value> lookup(Symbol Name, vm::Value Env);
  vm::Value constantValue(const ConstExpr *E);

  vm::Heap &H;
  std::unordered_map<Symbol, vm::Value> Globals;
  std::unordered_map<const Expr *, vm::Value> ConstCache;
  std::vector<vm::Value> Shadow; ///< GC-visible temporaries

  friend class ShadowScope;
};

} // namespace eval
} // namespace pecomp

#endif // PECOMP_EVAL_INTERP_H
