//===- eval/Interp.h - Reference interpreter --------------------*- C++ -*-===//
///
/// \file
/// A direct (environment-passing) interpreter for Core Scheme. It defines
/// the reference semantics: the compilers, the specializer, and the fused
/// RTCG path are all differentially tested against it.
///
/// Environments are association lists built from runtime pairs, and
/// interpreter closures are heap objects, so the garbage collector sees
/// everything; temporaries held in C++ locals are protected through a
/// shadow stack.
///
/// Calls in tail position iterate rather than recurse, so interpreted loops
/// run in constant C++ stack space.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_EVAL_INTERP_H
#define PECOMP_EVAL_INTERP_H

#include "support/Error.h"
#include "syntax/Expr.h"
#include "vm/Heap.h"

#include <unordered_map>

namespace pecomp {
namespace eval {

class Interp : public vm::RootProvider {
public:
  /// Binds every definition of \p P as a global procedure. The program must
  /// outlive the interpreter.
  Interp(vm::Heap &H, const Program &P);
  ~Interp() override;
  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  /// Applies the top-level function \p Name to \p Args.
  Result<vm::Value> callFunction(Symbol Name,
                                 std::span<const vm::Value> Args);

  /// Evaluates an expression in the empty local environment (for tests).
  Result<vm::Value> evalExpr(const Expr *E);

  /// Caps the number of evaluation steps (0 = unlimited). Exceeding it
  /// unwinds with a FuelExhausted-coded error, mirroring the machine's
  /// fuel governor so divergence surfaces identically on both engines.
  void setFuel(uint64_t MaxSteps) { Fuel = MaxSteps; }

  /// Caps the non-tail evaluation depth (0 = unlimited). Exceeding it
  /// unwinds with a FrameOverflow-coded error, the oracle analogue of
  /// vm::Limits::MaxFrames.
  void setMaxDepth(size_t Max) { MaxDepth = Max; }

  void traceRoots(vm::RootVisitor &Visitor) override;

  vm::Heap &heap() { return H; }

private:
  Result<vm::Value> eval(const Expr *E, vm::Value Env);
  Result<vm::Value> lookup(Symbol Name, vm::Value Env);
  vm::Value constantValue(const ConstExpr *E);

  vm::Heap &H;
  std::unordered_map<Symbol, vm::Value> Globals;
  std::unordered_map<const Expr *, vm::Value> ConstCache;
  std::vector<vm::Value> Shadow; ///< GC-visible temporaries
  uint64_t Fuel = 0;            ///< step limit; 0 = unlimited
  uint64_t Steps = 0;           ///< steps taken by the current call
  size_t MaxDepth = 0;          ///< non-tail depth limit; 0 = unlimited
  size_t Depth = 0;             ///< current non-tail eval() nesting

  friend class ShadowScope;
};

} // namespace eval
} // namespace pecomp

#endif // PECOMP_EVAL_INTERP_H
