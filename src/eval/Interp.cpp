//===- eval/Interp.cpp - Reference interpreter ----------------------------===//

#include "eval/Interp.h"

#include "support/Casting.h"
#include "vm/Convert.h"
#include "vm/Prims.h"
#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::eval;
using vm::Value;

namespace pecomp {
namespace eval {

/// RAII window onto the interpreter's shadow stack: slots pushed in this
/// scope are GC roots until the scope ends, and remain valid references
/// (the shadow stack only grows within a scope's lifetime... slots are
/// indices, not pointers, to survive reallocation).
class ShadowScope {
public:
  explicit ShadowScope(Interp &I) : I(I), Saved(I.Shadow.size()) {}
  ~ShadowScope() { I.Shadow.resize(Saved); }

  /// Protects \p V; returns its slot index.
  size_t push(Value V) {
    I.Shadow.push_back(V);
    return I.Shadow.size() - 1;
  }

  Value get(size_t Slot) const { return I.Shadow[Slot]; }
  void set(size_t Slot, Value V) { I.Shadow[Slot] = V; }

  /// Drops every slot above \p Slot. Called at the top of tail-call loops
  /// so long-running interpreted loops do not grow the shadow stack.
  void trimTo(size_t Slot) { I.Shadow.resize(Slot + 1); }

private:
  Interp &I;
  size_t Saved;
};

} // namespace eval
} // namespace pecomp

Interp::Interp(vm::Heap &H, const Program &P) : H(H) {
  H.addRootProvider(this);
  for (const Definition &D : P.Defs)
    Globals.emplace(D.Name, H.interpClosure(D.Fn, Value::nil()));
}

Interp::~Interp() { H.removeRootProvider(this); }

void Interp::traceRoots(vm::RootVisitor &Visitor) {
  for (auto &[Name, V] : Globals)
    Visitor.visit(V);
  for (auto &[E, V] : ConstCache)
    Visitor.visit(V);
  for (Value V : Shadow)
    Visitor.visit(V);
}

Value Interp::constantValue(const ConstExpr *E) {
  auto It = ConstCache.find(E);
  if (It != ConstCache.end())
    return It->second;
  Value V = vm::valueFromDatum(H, E->value());
  ConstCache.emplace(E, V);
  return V;
}

Result<Value> Interp::lookup(Symbol Name, Value Env) {
  for (Value Cursor = Env; !Cursor.isNil();) {
    auto *Frame = cast<vm::PairObject>(Cursor.asObject());
    auto *Binding = cast<vm::PairObject>(Frame->Car.asObject());
    if (Binding->Car == Value::symbol(Name))
      return Binding->Cdr;
    Cursor = Frame->Cdr;
  }
  auto It = Globals.find(Name);
  if (It != Globals.end())
    return It->second;
  // Same class as the machine's UndefinedGlobal trap, so differential
  // tests can compare error codes across the two engines.
  return vm::trapError(vm::TrapKind::UndefinedGlobal,
                       "unbound variable '" + Name.str() + "'");
}

Result<Value> Interp::callFunction(Symbol Name,
                                   std::span<const Value> Args) {
  auto It = Globals.find(Name);
  if (It == Globals.end())
    return Error("no definition named '" + Name.str() + "'");
  auto *Clo = cast<vm::InterpClosureObject>(It->second.asObject());
  if (Clo->Fn->params().size() != Args.size())
    return vm::trapError(vm::TrapKind::ArityMismatch,
                         "'" + Name.str() + "' expects " +
                             std::to_string(Clo->Fn->params().size()) +
                             " argument(s), got " +
                             std::to_string(Args.size()));
  Steps = 0; // fresh fuel budget per top-level call
  ShadowScope Scope(*this);
  size_t EnvSlot = Scope.push(Value::nil());
  for (size_t I = 0; I != Args.size(); ++I) {
    size_t ArgSlot = Scope.push(Args[I]);
    Value Binding =
        H.pair(Value::symbol(Clo->Fn->params()[I]), Scope.get(ArgSlot));
    size_t BindingSlot = Scope.push(Binding);
    Scope.set(EnvSlot, H.pair(Scope.get(BindingSlot), Scope.get(EnvSlot)));
  }
  return eval(Clo->Fn->body(), Scope.get(EnvSlot));
}

Result<Value> Interp::evalExpr(const Expr *E) {
  Steps = 0;
  return eval(E, Value::nil());
}

namespace {
/// RAII non-tail nesting counter for the depth governor.
struct DepthGuard {
  size_t &Depth;
  explicit DepthGuard(size_t &Depth) : Depth(Depth) { ++Depth; }
  ~DepthGuard() { --Depth; }
};
} // namespace

Result<Value> Interp::eval(const Expr *E, Value Env) {
  DepthGuard Guard(Depth);
  if (MaxDepth && Depth > MaxDepth)
    return vm::trapError(vm::TrapKind::FrameOverflow,
                         "evaluation depth limit of " +
                             std::to_string(MaxDepth) + " exceeded");
  ShadowScope Scope(*this);
  size_t EnvSlot = Scope.push(Env);

  for (;;) {
    if (H.faulted())
      return vm::trapError(vm::TrapKind::HeapExhausted,
                           "heap exhausted during evaluation: " +
                               H.faultMessage());
    if (Fuel && ++Steps > Fuel)
      return vm::trapError(vm::TrapKind::FuelExhausted,
                           "fuel exhausted after " + std::to_string(Fuel) +
                               " steps");
    Scope.trimTo(EnvSlot);
    Env = Scope.get(EnvSlot);
    switch (E->kind()) {
    case Expr::Kind::Const:
      return constantValue(cast<ConstExpr>(E));
    case Expr::Kind::Var:
      return lookup(cast<VarExpr>(E)->name(), Env);
    case Expr::Kind::Lambda:
      return H.interpClosure(cast<LambdaExpr>(E), Env);
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      Result<Value> Init = eval(L->init(), Env);
      if (!Init)
        return Init;
      size_t InitSlot = Scope.push(*Init);
      Value Binding = H.pair(Value::symbol(L->name()), Scope.get(InitSlot));
      size_t BindingSlot = Scope.push(Binding);
      Scope.set(EnvSlot, H.pair(Scope.get(BindingSlot), Scope.get(EnvSlot)));
      E = L->body();
      continue; // tail position
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      Result<Value> Test = eval(I->test(), Env);
      if (!Test)
        return Test;
      E = Test->isTruthy() ? I->thenBranch() : I->elseBranch();
      continue; // tail position
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      Result<Value> Callee = eval(A->callee(), Env);
      if (!Callee)
        return Callee;
      size_t CalleeSlot = Scope.push(*Callee);
      std::vector<size_t> ArgSlots;
      for (const Expr *Arg : A->args()) {
        Result<Value> V = eval(Arg, Scope.get(EnvSlot));
        if (!V)
          return V;
        ArgSlots.push_back(Scope.push(*V));
      }
      Value CalleeV = Scope.get(CalleeSlot);
      if (!CalleeV.isObject() ||
          !isa<vm::InterpClosureObject>(CalleeV.asObject()))
        return vm::trapError(vm::TrapKind::TypeError,
                             "application of a non-procedure: " +
                                 vm::valueToString(CalleeV));
      auto *Clo = cast<vm::InterpClosureObject>(CalleeV.asObject());
      if (Clo->Fn->params().size() != ArgSlots.size())
        return vm::trapError(vm::TrapKind::ArityMismatch,
                             "procedure expects " +
                                 std::to_string(Clo->Fn->params().size()) +
                                 " argument(s), got " +
                                 std::to_string(ArgSlots.size()));
      // Tail call: rebuild the environment and loop.
      size_t NewEnvSlot = Scope.push(Clo->Env);
      for (size_t I = 0; I != ArgSlots.size(); ++I) {
        Value Binding =
            H.pair(Value::symbol(Clo->Fn->params()[I]), Scope.get(ArgSlots[I]));
        size_t BindingSlot = Scope.push(Binding);
        Scope.set(NewEnvSlot,
                  H.pair(Scope.get(BindingSlot), Scope.get(NewEnvSlot)));
      }
      Scope.set(EnvSlot, Scope.get(NewEnvSlot));
      E = Clo->Fn->body();
      continue;
    }
    case Expr::Kind::PrimApp: {
      const auto *P = cast<PrimAppExpr>(E);
      std::vector<size_t> ArgSlots;
      for (const Expr *Arg : P->args()) {
        Result<Value> V = eval(Arg, Scope.get(EnvSlot));
        if (!V)
          return V;
        ArgSlots.push_back(Scope.push(*V));
      }
      std::vector<Value> Args;
      for (size_t Slot : ArgSlots)
        Args.push_back(Scope.get(Slot));
      return vm::applyPrim(P->op(), H, Args);
    }
    case Expr::Kind::Set:
      return Error("set! reached the evaluator; run assignment elimination");
    }
  }
}
