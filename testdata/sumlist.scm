;; List utilities for the CLI integration tests.
(define (sum xs)
  (if (null? xs) 0 (+ (car xs) (sum (cdr xs)))))

(define (rev xs acc)
  (if (null? xs) acc (rev (cdr xs) (cons (car xs) acc))))

(define (main xs)
  (cons (sum xs) (rev xs '())))
