;; pecomp-fuzz-case v1
;; entry main
;; division SD
;; args 3 -4
;; Continuation duplication: every dynamic conditional residualizes its
;; continuation into both arms, so nesting them across an unfolded call
;; multiplies residual paths. This case keeps the blowup bounded (it must
;; RUN, not skip) while pinning value agreement across all five tiers on
;; exactly the shape that triggered the specializer's step-budget guard.
(define (leaf a b)
  (if (< a b)
      (- (* a 3) b)
      (+ (* b 2) a)))

(define (mid k x)
  (if (>= x 0)
      (leaf (+ k x) (- x 7))
      (leaf (- k x) (+ x 9))))

(define (main s d)
  (if (= (remainder d 2) 0)
      (mid s (+ d 1))
      (if (< d s)
          (mid (+ s 1) (- d 3))
          (mid (- s 2) (* d 2)))))
