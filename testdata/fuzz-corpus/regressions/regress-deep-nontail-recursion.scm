;; pecomp-fuzz-case v1
;; entry sum
;; division DD
;; args 300 0
;; Non-tail recursion 300 frames deep: the oracle evaluates these on the
;; host C++ stack, which used to segfault for unbounded mutants before the
;; harness engaged Interp's depth governor. 300 sits safely under the
;; harness cap (512) and must agree across the oracle and all VM tiers.
(define (sum n acc)
  (if (< n 1)
      acc
      (+ n (sum (- n 1) acc))))
