;; pecomp-fuzz-case v1
;; entry spin
;; division DD
;; args 100000 1
;; limits 64 0 0 0 0 0
;; Fuel exhaustion mid-loop under a tight budget: every VM tier must trap
;; FuelExhausted at the same PC with the same instruction count (the
;; fused tier burns fuel per source instruction, not per superinstruction).
(define (spin n acc)
  (if (< n 1)
      acc
      (spin (- n 1) (* acc 3))))
