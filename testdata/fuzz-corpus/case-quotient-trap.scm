;; pecomp-fuzz-case v1
;; entry f
;; division DD
;; args 17 0
(define (f a b) (+ (quotient a b) (remainder a b)))
