;; pecomp-fuzz-case v1
;; entry power
;; division DS
;; args 2 8
(define (power base exp)
  (if (zero? exp) 1 (* base (power base (- exp 1)))))
