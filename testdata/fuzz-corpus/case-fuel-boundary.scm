;; pecomp-fuzz-case v1
;; entry loop
;; division DS
;; args 5 6
;; limits 40 0 0 0 0 0
(define (loop acc n)
  (if (zero? n) acc (loop (+ acc n) (- n 1))))
