;; pecomp-fuzz-case v1
;; entry g
;; division SD
;; args 3 -4
(define (pick a b) (if (< a b) (- b a) (- a b)))
(define (g s x)
  (if (zero? s)
      (pick x 0)
      (if (< x s) (pick s x) (* x (pick x s)))))
