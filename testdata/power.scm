;; The canonical first specialization subject.
(define (power x n)
  (if (zero? n)
      1
      (* x (power x (- n 1)))))
