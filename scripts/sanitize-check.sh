#!/usr/bin/env bash
# Builds the tree under AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the full tier-1 test suite. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and therefore fails the corresponding test.
#
# Usage: scripts/sanitize-check.sh [--ndebug] [--switch-dispatch]
#                                  [--no-fuse] [--no-peephole] [--fuzz-smoke]
#                                  [--store-smoke] [--respecialize-smoke]
#                                  [--net-smoke] [--jit-smoke] [ctest-args...]
#   --ndebug           additionally compile with -DNDEBUG kept, proving the
#                      trap model never leans on assert() (the RTCG trust
#                      requirement).
#   --switch-dispatch  build the portable switch-based VM dispatch loop
#                      instead of computed goto, so the sanitizers cover
#                      the fallback dispatch path too.
#   --no-fuse          default superinstruction fusion off, so the suite
#                      exercises the one-source-instruction decoded loop.
#   --no-peephole      default the link-time peephole pass off, covering
#                      the unoptimized byte streams.
#   --fuzz-smoke       run only the fuzz-labelled ctest entries (seeded
#                      differential smoke, injected-bug self-tests,
#                      regression-corpus replay) under the sanitizers.
#   --store-smoke      run only the store-labelled ctest entries (the
#                      DiskStore corruption matrix, fault-plan and
#                      kill-during-write tests, plus the --store /
#                      cache-fsck CLI tests) under the sanitizers — the
#                      PR 7 acceptance gate that no corrupt store input
#                      ever crashes.
#   --respecialize-smoke
#                      run only the respec-labelled ctest entries (profile
#                      census, guarded dispatch, online re-specialization,
#                      service shutdown races) under the sanitizers — the
#                      PR 8 gate that background generation, the guard shim
#                      and the start/stop stress are data-race- and
#                      UB-clean.
#   --jit-smoke        run only the jit-labelled ctest entries (the native
#                      tier's compile-shape, fuel-sweep parity, GC-stress
#                      and profile tests, plus the seven-tier fuzz smoke
#                      with the native leg) under the sanitizers — the
#                      PR 10 gate. The JIT's mmap'd code buffers are
#                      W^X (PROT_READ|PROT_WRITE while emitting, then
#                      PROT_READ|PROT_EXEC before execution); ASan does
#                      not instrument the generated code itself, but it
#                      fully checks both sides of every call-out seam —
#                      the C++ helpers the templates call into, the
#                      ExecState the native code shares with the
#                      interpreter, and the allocation paths reached
#                      from native frames — which is where the tier's
#                      memory bugs would live.
#   --net-smoke        run only the net-labelled ctest entries (the frame
#                      codec matrix, the loopback server suite, the
#                      net-frames/net-connect fuzz modes, the serve
#                      --listen CLI test and the net_serve --quick load
#                      smoke) under the sanitizers — the PR 9 gate that
#                      the epoll loop, cross-thread completion handoff and
#                      untrusted-frame parsing are memory- and UB-clean.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DPECOMP_SANITIZE=ON)
while [[ "${1:-}" == --* ]]; do
  case "$1" in
  --ndebug)
    BUILD_DIR="${BUILD_DIR}-ndebug"
    CMAKE_ARGS+=(-DPECOMP_NDEBUG=ON)
    shift
    ;;
  --switch-dispatch)
    BUILD_DIR="${BUILD_DIR}-switch"
    CMAKE_ARGS+=(-DPECOMP_FORCE_SWITCH_DISPATCH=ON)
    shift
    ;;
  --no-fuse)
    BUILD_DIR="${BUILD_DIR}-nofuse"
    CMAKE_ARGS+=(-DPECOMP_NO_FUSE=ON)
    shift
    ;;
  --no-peephole)
    BUILD_DIR="${BUILD_DIR}-nopeep"
    CMAKE_ARGS+=(-DPECOMP_NO_PEEPHOLE=ON)
    shift
    ;;
  --fuzz-smoke)
    # Only the fuzz-labelled ctest entries: the seeded differential smoke,
    # the injected-bug self-tests, and the regression-corpus replay, all
    # under ASan/UBSan — the fuzzer exercises allocation-fault schedules
    # and snapshot instantiation paths the unit tests cannot reach.
    FUZZ_SMOKE=1
    shift
    ;;
  --respecialize-smoke)
    # Only the respec-labelled ctest entries: the profile-census unit
    # tests, the guard shim's hit/miss parity tests, the online
    # re-specialization service tests and the start-then-destroy stress,
    # under ASan/UBSan — the respec path runs generation on background
    # workers, which is exactly where lifetime bugs hide.
    RESPEC_SMOKE=1
    shift
    ;;
  --jit-smoke)
    # Only the jit-labelled ctest entries under ASan/UBSan. The generated
    # x86-64 blocks run un-instrumented (sanitizers can't see into mmap'd
    # templates), but every path that matters crosses back into C++:
    # prim/global/call/return call-outs, GC from native frames, trap
    # construction on bail. Those seams are exactly what this smoke
    # covers.
    JIT_SMOKE=1
    shift
    ;;
  --net-smoke)
    # Only the net-labelled ctest entries: the pure-codec matrix, the
    # loopback end-to-end suite, both net fuzz modes and the serving
    # smoke, under ASan/UBSan — the server decodes attacker-controlled
    # bytes and hands buffers across threads, the two places where the
    # sanitizers earn their keep.
    NET_SMOKE=1
    shift
    ;;
  --store-smoke)
    # Only the store-labelled ctest entries: every adversarial-store unit
    # test and the persistent-store CLI tests, under ASan/UBSan — the
    # corruption matrix's "zero crashes" claim is only meaningful with
    # the sanitizers watching.
    STORE_SMOKE=1
    shift
    ;;
  *)
    break
    ;;
  esac
done

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes every ASan/UBSan finding a hard test failure; leak
# detection stays on (the heap's destructor must free every object).
export ASAN_OPTIONS=halt_on_error=1:detect_leaks=1
export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1

if [[ "${FUZZ_SMOKE:-0}" == 1 ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L fuzz -j "$(nproc)" "$@"
elif [[ "${STORE_SMOKE:-0}" == 1 ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L store -j "$(nproc)" "$@"
elif [[ "${RESPEC_SMOKE:-0}" == 1 ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L respec -j "$(nproc)" "$@"
elif [[ "${NET_SMOKE:-0}" == 1 ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L net -j "$(nproc)" "$@"
elif [[ "${JIT_SMOKE:-0}" == 1 ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L jit -j "$(nproc)" "$@"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
fi
