#!/usr/bin/env bash
# Builds the paper-figure benchmark harnesses, runs each with JSON output,
# and merges the results into one machine-readable file (BENCH_pr10.json
# by default). The merged document carries derived blocks next to the raw
# benchmarks:
#
#   fig8_run_speedup        — byte-loop time over pre-decoded time for the
#                             compiled interpreter workloads (PR 3),
#   cache_amortization      — cold generation time over cache-hit time
#                             (key + lookup + instantiate) per workload
#                             (PR 4); the acceptance bar is >= 5x on every
#                             workload,
#   dispatch_fusion_speedup — the PR 3 decoded loop (no peephole) over
#                             decoded+fused+peepholed per workload (PR 5);
#                             the acceptance bar is >= 1.10x on at least
#                             two of MIXWELL/LAZY/IMP, and
#   warm_start_speedup      — cold first-request time (generate + capture
#                             + instantiate) over disk-warm first-request
#                             time (store load + checksums + verify +
#                             instantiate) per workload (PR 7); the
#                             acceptance bar is >= 5x on every workload,
#   respecialize_speedup    — skewed-mix serving time with re-specialization
#                             off over the same mix with it on, per workload
#                             (PR 8); the acceptance bar is >= 1.15x on at
#                             least two of MIXWELL/LAZY/IMP, and
#   guard_miss_overhead     — all-miss uniform-mix On/Off - 1 (PR 8): the
#                             pure deopt cost; the acceptance bar is <= 5%,
#   native_speedup          — fused-loop time over native-tier time per
#                             workload (PR 10: the per-block template JIT
#                             under the fused dispatch loop); the
#                             acceptance bar is >= 1.5x on at least two
#                             of MIXWELL/LAZY/IMP, skipped on hosts
#                             without the tier, and
#   net_serve               — the networked serving load generator (PR 9):
#                             cold/warm throughput over real loopback
#                             sockets from 128 concurrent connections,
#                             client-side p50/p95/p99 latency, and the
#                             overload-shed census. The acceptance bars
#                             are warm_over_cold >= 3x, shed > 0 (the
#                             flooded tiny-queue server must refuse with
#                             classified Overloaded), and desync == 0
#                             (nothing unclassified ever crosses the
#                             wire).
#
# Unless --quick is given, the PR 8, PR 9, and PR 10 bars are enforced:
# the script exits non-zero if the skewed-mix speedup clears 1.15x on
# fewer than two workloads, the guard-miss overhead exceeds 5%, the
# warm-cache serving throughput is under 3x cold, no shed was classified,
# any protocol desync was observed, or (on JIT-capable hosts) the native
# tier clears 1.5x over the fused loop on fewer than two workloads.
#
# Usage: scripts/bench-run.sh [--quick] [--build-dir DIR] [--out FILE]
#   --quick       near-zero measuring budget (smoke the harnesses, numbers
#                 not meaningful)
#   --build-dir   build tree to use (default: build)
#   --out         merged output file (default: BENCH_pr10.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT=BENCH_pr10.json
MIN_TIME=0.2
QUICK=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
  --quick)
    MIN_TIME=0.005
    QUICK=1
    shift
    ;;
  --build-dir)
    BUILD_DIR=$2
    shift 2
    ;;
  --out)
    OUT=$2
    shift 2
    ;;
  *)
    echo "bench-run.sh: unknown flag $1" >&2
    exit 2
    ;;
  esac
done

HARNESSES=(fig6_generation_speed fig7_compile_residual fig8_rtcg_compilation
           residual_speedup amortized_generation rtcg_service_scaling
           dispatch_fusion native_tier warm_start respecialize_skew)

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${HARNESSES[@]}" net_serve

RAW_DIR="$BUILD_DIR/bench-json"
mkdir -p "$RAW_DIR"
for H in "${HARNESSES[@]}"; do
  echo "== $H (min_time=${MIN_TIME}s)" >&2
  # The respec harness drives the full serve loop (worker pool, queues),
  # whose per-run noise is a few percent — too much for a single-shot
  # ratio feeding a 5% gate. Run it with repetitions and derive the
  # respec metrics from the median aggregates instead.
  EXTRA=()
  if [[ $H == respecialize_skew ]]; then
    EXTRA=(--benchmark_repetitions=5 --benchmark_report_aggregates_only=true)
  fi
  "$BUILD_DIR/bench/$H" --benchmark_format=json "${EXTRA[@]}" \
    --benchmark_min_time="$MIN_TIME" >"$RAW_DIR/$H.json"
done

# The networked load generator is its own harness (real sockets,
# client-side percentiles); it emits one JSON document directly.
echo "== net_serve$([ "$QUICK" == 1 ] && echo ' (--quick)')" >&2
if [[ $QUICK == 1 ]]; then
  "$BUILD_DIR/bench/net_serve" --quick >"$RAW_DIR/net_serve.json"
else
  "$BUILD_DIR/bench/net_serve" >"$RAW_DIR/net_serve.json"
fi

# Merge the per-harness JSON into one document with the derived ratio
# blocks (cpu_time, ns, per workload).
if command -v jq >/dev/null 2>&1; then
  jq -s '
    def t(n): (map(.benchmarks[]) | map(select(.name == n)) | .[0].cpu_time);
    def r(n): (map(.benchmarks[]) | map(select(.name == n)) | .[0].real_time);
    {
      schema: "pecomp-bench-pr8/v1",
      context: .[0].context,
      fig8_run_speedup: ({
        MIXWELL: (t("BM_Fig8_Run_Bytes_MIXWELL") / t("BM_Fig8_Run_Decoded_MIXWELL")),
        LAZY: (t("BM_Fig8_Run_Bytes_LAZY") / t("BM_Fig8_Run_Decoded_LAZY")),
        IMP: (t("BM_Fig8_Run_Bytes_IMP") / t("BM_Fig8_Run_Decoded_IMP"))
      }),
      cache_amortization: ({
        MIXWELL: (t("BM_Amortized_ColdGeneration_MIXWELL") / t("BM_Amortized_CacheHit_MIXWELL")),
        LAZY: (t("BM_Amortized_ColdGeneration_LAZY") / t("BM_Amortized_CacheHit_LAZY")),
        IMP: (t("BM_Amortized_ColdGeneration_IMP") / t("BM_Amortized_CacheHit_IMP"))
      }),
      dispatch_fusion_speedup: ({
        MIXWELL: (t("BM_DispatchFusion_Decoded_NoPeep_MIXWELL") / t("BM_DispatchFusion_Fused_Peep_MIXWELL")),
        LAZY: (t("BM_DispatchFusion_Decoded_NoPeep_LAZY") / t("BM_DispatchFusion_Fused_Peep_LAZY")),
        IMP: (t("BM_DispatchFusion_Decoded_NoPeep_IMP") / t("BM_DispatchFusion_Fused_Peep_IMP"))
      }),
      native_speedup: ({
        MIXWELL: (t("BM_NativeTier_Fused_MIXWELL") / t("BM_NativeTier_Native_MIXWELL")),
        LAZY: (t("BM_NativeTier_Fused_LAZY") / t("BM_NativeTier_Native_LAZY")),
        IMP: (t("BM_NativeTier_Fused_IMP") / t("BM_NativeTier_Native_IMP"))
      }),
      warm_start_speedup: ({
        MIXWELL: (t("BM_WarmStart_ColdFirstRequest_MIXWELL") / t("BM_WarmStart_WarmFirstRequest_MIXWELL")),
        LAZY: (t("BM_WarmStart_ColdFirstRequest_LAZY") / t("BM_WarmStart_WarmFirstRequest_LAZY")),
        IMP: (t("BM_WarmStart_ColdFirstRequest_IMP") / t("BM_WarmStart_WarmFirstRequest_IMP"))
      }),
      respecialize_speedup: ({
        MIXWELL: (r("BM_RespecSkew_Off_MIXWELL/real_time_median") / r("BM_RespecSkew_On_MIXWELL/real_time_median")),
        LAZY: (r("BM_RespecSkew_Off_LAZY/real_time_median") / r("BM_RespecSkew_On_LAZY/real_time_median")),
        IMP: (r("BM_RespecSkew_Off_IMP/real_time_median") / r("BM_RespecSkew_On_IMP/real_time_median"))
      }),
      guard_miss_overhead: (r("BM_RespecUniform_On_MIXWELL/real_time_median") / r("BM_RespecUniform_Off_MIXWELL/real_time_median") - 1),
      benchmarks: (map(.benchmarks) | add)
    }' "$RAW_DIR"/fig6_generation_speed.json \
       "$RAW_DIR"/fig7_compile_residual.json \
       "$RAW_DIR"/fig8_rtcg_compilation.json \
       "$RAW_DIR"/residual_speedup.json \
       "$RAW_DIR"/amortized_generation.json \
       "$RAW_DIR"/rtcg_service_scaling.json \
       "$RAW_DIR"/dispatch_fusion.json \
       "$RAW_DIR"/native_tier.json \
       "$RAW_DIR"/warm_start.json \
       "$RAW_DIR"/respecialize_skew.json >"$OUT"
else
  python3 - "$RAW_DIR" "$OUT" <<'EOF'
import json, sys
raw_dir, out = sys.argv[1], sys.argv[2]
harnesses = ["fig6_generation_speed", "fig7_compile_residual",
             "fig8_rtcg_compilation", "residual_speedup",
             "amortized_generation", "rtcg_service_scaling",
             "dispatch_fusion", "native_tier", "warm_start",
             "respecialize_skew"]
docs = [json.load(open(f"{raw_dir}/{h}.json")) for h in harnesses]
benches = [b for d in docs for b in d["benchmarks"]]
times = {b["name"]: b["cpu_time"] for b in benches}
real = {b["name"]: b["real_time"] for b in benches}
speedup = {
    lang: times[f"BM_Fig8_Run_Bytes_{lang}"] /
          times[f"BM_Fig8_Run_Decoded_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
amortization = {
    lang: times[f"BM_Amortized_ColdGeneration_{lang}"] /
          times[f"BM_Amortized_CacheHit_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
fusion = {
    lang: times[f"BM_DispatchFusion_Decoded_NoPeep_{lang}"] /
          times[f"BM_DispatchFusion_Fused_Peep_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
native = {
    lang: times[f"BM_NativeTier_Fused_{lang}"] /
          times[f"BM_NativeTier_Native_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
warm = {
    lang: times[f"BM_WarmStart_ColdFirstRequest_{lang}"] /
          times[f"BM_WarmStart_WarmFirstRequest_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
respec = {
    lang: real[f"BM_RespecSkew_Off_{lang}/real_time_median"] /
          real[f"BM_RespecSkew_On_{lang}/real_time_median"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
miss_overhead = (real["BM_RespecUniform_On_MIXWELL/real_time_median"] /
                 real["BM_RespecUniform_Off_MIXWELL/real_time_median"]) - 1
json.dump({"schema": "pecomp-bench-pr8/v1", "context": docs[0]["context"],
           "fig8_run_speedup": speedup, "cache_amortization": amortization,
           "dispatch_fusion_speedup": fusion, "native_speedup": native,
           "warm_start_speedup": warm,
           "respecialize_speedup": respec,
           "guard_miss_overhead": miss_overhead,
           "benchmarks": benches},
          open(out, "w"), indent=1)
open(out, "a").write("\n")
EOF
fi

# Graft the net_serve document in and stamp the PR 9 schema.
python3 - "$OUT" "$RAW_DIR/net_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["schema"] = "pecomp-bench-pr10/v1"
doc["net_serve"] = json.load(open(sys.argv[2]))
json.dump(doc, open(sys.argv[1], "w"), indent=1)
open(sys.argv[1], "a").write("\n")
EOF

echo "wrote $OUT" >&2
if command -v jq >/dev/null 2>&1; then
  jq '{fig8_run_speedup, cache_amortization, dispatch_fusion_speedup, native_speedup, warm_start_speedup, respecialize_speedup, guard_miss_overhead, net_serve: {warm_over_cold: .net_serve.warm_over_cold, warm: .net_serve.warm, shed: .net_serve.shed, desync: .net_serve.desync}}' "$OUT" >&2
fi

# PR 8 acceptance gate. Under --quick the measuring budget is a smoke
# test and the ratios are noise, so the gate is skipped.
if [[ $QUICK == 0 ]]; then
  python3 - "$OUT" <<'GATE'
import json, sys
doc = json.load(open(sys.argv[1]))
speedups = doc["respecialize_speedup"]
overhead = doc["guard_miss_overhead"]
passing = [l for l, v in sorted(speedups.items()) if v >= 1.15]
rounded = {l: round(v, 2) for l, v in sorted(speedups.items())}
print(f"respecialize gate: speedups {rounded}, "
      f"guard-miss overhead {overhead * 100:.2f}%", file=sys.stderr)
ok = True
if len(passing) < 2:
    print(f"FAIL: respecialize_speedup >= 1.15x on only {len(passing)} of 3 "
          f"workloads (need >= 2)", file=sys.stderr)
    ok = False
if overhead > 0.05:
    print(f"FAIL: guard_miss_overhead {overhead * 100:.2f}% exceeds 5%",
          file=sys.stderr)
    ok = False
sys.exit(0 if ok else 1)
GATE

  # PR 9 acceptance gate: the networked path must amortize generation
  # (warm-cache throughput >= 3x cold), refuse overload with classified
  # Overloaded responses, and never desynchronize the protocol.
  python3 - "$OUT" <<'GATE9'
import json, sys
net = json.load(open(sys.argv[1]))["net_serve"]
warm = net["warm"]
print(f"net serving gate: warm/cold {net['warm_over_cold']:.2f}x, "
      f"warm p50 {warm['p50_us']:.0f}us p95 {warm['p95_us']:.0f}us "
      f"p99 {warm['p99_us']:.0f}us, shed {net['shed']['shed']}/"
      f"{net['shed']['requests']}, desync {net['desync']}", file=sys.stderr)
ok = True
if net["warm_over_cold"] < 3:
    print(f"FAIL: warm_over_cold {net['warm_over_cold']:.2f}x is under 3x",
          file=sys.stderr)
    ok = False
if net["shed"]["shed"] == 0:
    print("FAIL: the flooded tiny-queue server shed nothing — overload "
          "was not classified", file=sys.stderr)
    ok = False
if net["desync"] != 0:
    print(f"FAIL: {net['desync']} protocol desync(s) observed",
          file=sys.stderr)
    ok = False
sys.exit(0 if ok else 1)
GATE9

  # PR 10 acceptance gate: the native tier must clear 1.5x over the fused
  # loop on at least two of the three Run workloads. On hosts without the
  # tier the Native engines measure the fused loop itself — detected by a
  # near-1.0 ratio across the board — and the gate reports a skip, since
  # there is nothing to measure.
  python3 - "$OUT" <<'GATE10'
import json, sys
native = json.load(open(sys.argv[1]))["native_speedup"]
rounded = {l: round(v, 2) for l, v in sorted(native.items())}
print(f"native tier gate: speedups {rounded}", file=sys.stderr)
if all(0.9 <= v <= 1.1 for v in native.values()):
    print("native tier gate: ~1.0x everywhere — tier absent on this host, "
          "gate skipped", file=sys.stderr)
    sys.exit(0)
passing = [l for l, v in sorted(native.items()) if v >= 1.5]
if len(passing) < 2:
    print(f"FAIL: native_speedup >= 1.5x on only {len(passing)} of 3 "
          f"workloads (need >= 2)", file=sys.stderr)
    sys.exit(1)
sys.exit(0)
GATE10
fi
