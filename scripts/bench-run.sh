#!/usr/bin/env bash
# Builds the paper-figure benchmark harnesses, runs each with JSON output,
# and merges the results into one machine-readable file (BENCH_pr7.json by
# default). The merged document carries derived blocks next to the raw
# benchmarks:
#
#   fig8_run_speedup        — byte-loop time over pre-decoded time for the
#                             compiled interpreter workloads (PR 3),
#   cache_amortization      — cold generation time over cache-hit time
#                             (key + lookup + instantiate) per workload
#                             (PR 4); the acceptance bar is >= 5x on every
#                             workload,
#   dispatch_fusion_speedup — the PR 3 decoded loop (no peephole) over
#                             decoded+fused+peepholed per workload (PR 5);
#                             the acceptance bar is >= 1.10x on at least
#                             two of MIXWELL/LAZY/IMP, and
#   warm_start_speedup      — cold first-request time (generate + capture
#                             + instantiate) over disk-warm first-request
#                             time (store load + checksums + verify +
#                             instantiate) per workload (PR 7); the
#                             acceptance bar is >= 5x on every workload.
#
# Usage: scripts/bench-run.sh [--quick] [--build-dir DIR] [--out FILE]
#   --quick       near-zero measuring budget (smoke the harnesses, numbers
#                 not meaningful)
#   --build-dir   build tree to use (default: build)
#   --out         merged output file (default: BENCH_pr7.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT=BENCH_pr7.json
MIN_TIME=0.2
while [[ "${1:-}" == --* ]]; do
  case "$1" in
  --quick)
    MIN_TIME=0.005
    shift
    ;;
  --build-dir)
    BUILD_DIR=$2
    shift 2
    ;;
  --out)
    OUT=$2
    shift 2
    ;;
  *)
    echo "bench-run.sh: unknown flag $1" >&2
    exit 2
    ;;
  esac
done

HARNESSES=(fig6_generation_speed fig7_compile_residual fig8_rtcg_compilation
           residual_speedup amortized_generation rtcg_service_scaling
           dispatch_fusion warm_start)

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${HARNESSES[@]}"

RAW_DIR="$BUILD_DIR/bench-json"
mkdir -p "$RAW_DIR"
for H in "${HARNESSES[@]}"; do
  echo "== $H (min_time=${MIN_TIME}s)" >&2
  "$BUILD_DIR/bench/$H" --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" >"$RAW_DIR/$H.json"
done

# Merge the per-harness JSON into one document with the derived ratio
# blocks (cpu_time, ns, per workload).
if command -v jq >/dev/null 2>&1; then
  jq -s '
    def t(n): (map(.benchmarks[]) | map(select(.name == n)) | .[0].cpu_time);
    {
      schema: "pecomp-bench-pr7/v1",
      context: .[0].context,
      fig8_run_speedup: ({
        MIXWELL: (t("BM_Fig8_Run_Bytes_MIXWELL") / t("BM_Fig8_Run_Decoded_MIXWELL")),
        LAZY: (t("BM_Fig8_Run_Bytes_LAZY") / t("BM_Fig8_Run_Decoded_LAZY")),
        IMP: (t("BM_Fig8_Run_Bytes_IMP") / t("BM_Fig8_Run_Decoded_IMP"))
      }),
      cache_amortization: ({
        MIXWELL: (t("BM_Amortized_ColdGeneration_MIXWELL") / t("BM_Amortized_CacheHit_MIXWELL")),
        LAZY: (t("BM_Amortized_ColdGeneration_LAZY") / t("BM_Amortized_CacheHit_LAZY")),
        IMP: (t("BM_Amortized_ColdGeneration_IMP") / t("BM_Amortized_CacheHit_IMP"))
      }),
      dispatch_fusion_speedup: ({
        MIXWELL: (t("BM_DispatchFusion_Decoded_NoPeep_MIXWELL") / t("BM_DispatchFusion_Fused_Peep_MIXWELL")),
        LAZY: (t("BM_DispatchFusion_Decoded_NoPeep_LAZY") / t("BM_DispatchFusion_Fused_Peep_LAZY")),
        IMP: (t("BM_DispatchFusion_Decoded_NoPeep_IMP") / t("BM_DispatchFusion_Fused_Peep_IMP"))
      }),
      warm_start_speedup: ({
        MIXWELL: (t("BM_WarmStart_ColdFirstRequest_MIXWELL") / t("BM_WarmStart_WarmFirstRequest_MIXWELL")),
        LAZY: (t("BM_WarmStart_ColdFirstRequest_LAZY") / t("BM_WarmStart_WarmFirstRequest_LAZY")),
        IMP: (t("BM_WarmStart_ColdFirstRequest_IMP") / t("BM_WarmStart_WarmFirstRequest_IMP"))
      }),
      benchmarks: (map(.benchmarks) | add)
    }' "$RAW_DIR"/fig6_generation_speed.json \
       "$RAW_DIR"/fig7_compile_residual.json \
       "$RAW_DIR"/fig8_rtcg_compilation.json \
       "$RAW_DIR"/residual_speedup.json \
       "$RAW_DIR"/amortized_generation.json \
       "$RAW_DIR"/rtcg_service_scaling.json \
       "$RAW_DIR"/dispatch_fusion.json \
       "$RAW_DIR"/warm_start.json >"$OUT"
else
  python3 - "$RAW_DIR" "$OUT" <<'EOF'
import json, sys
raw_dir, out = sys.argv[1], sys.argv[2]
harnesses = ["fig6_generation_speed", "fig7_compile_residual",
             "fig8_rtcg_compilation", "residual_speedup",
             "amortized_generation", "rtcg_service_scaling",
             "dispatch_fusion", "warm_start"]
docs = [json.load(open(f"{raw_dir}/{h}.json")) for h in harnesses]
benches = [b for d in docs for b in d["benchmarks"]]
times = {b["name"]: b["cpu_time"] for b in benches}
speedup = {
    lang: times[f"BM_Fig8_Run_Bytes_{lang}"] /
          times[f"BM_Fig8_Run_Decoded_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
amortization = {
    lang: times[f"BM_Amortized_ColdGeneration_{lang}"] /
          times[f"BM_Amortized_CacheHit_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
fusion = {
    lang: times[f"BM_DispatchFusion_Decoded_NoPeep_{lang}"] /
          times[f"BM_DispatchFusion_Fused_Peep_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
warm = {
    lang: times[f"BM_WarmStart_ColdFirstRequest_{lang}"] /
          times[f"BM_WarmStart_WarmFirstRequest_{lang}"]
    for lang in ("MIXWELL", "LAZY", "IMP")
}
json.dump({"schema": "pecomp-bench-pr7/v1", "context": docs[0]["context"],
           "fig8_run_speedup": speedup, "cache_amortization": amortization,
           "dispatch_fusion_speedup": fusion, "warm_start_speedup": warm,
           "benchmarks": benches},
          open(out, "w"), indent=1)
open(out, "a").write("\n")
EOF
fi

echo "wrote $OUT" >&2
if command -v jq >/dev/null 2>&1; then
  jq '{fig8_run_speedup, cache_amortization, dispatch_fusion_speedup, warm_start_speedup}' "$OUT" >&2
fi
