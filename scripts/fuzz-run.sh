#!/usr/bin/env bash
# Long-run divergence hunt: sweeps the differential fuzzer across many
# seeds, persists minimized findings (deduplicated by case fingerprint —
# the corpus filename is the fingerprint, so reruns never duplicate), and
# writes a JSON summary of every per-seed run plus the finding files.
# Every run covers all seven execution tiers, including the native
# per-block template JIT and the guarded re-specialization dispatch
# (deopt leg under perturbations, hit leg on unperturbed cases); pass
# --no-guarded / --no-native to drop tiers for throughput.
#
# Usage: scripts/fuzz-run.sh [--seeds N] [--iters N] [--build DIR]
#                            [--out DIR] [--save-novel] [--no-store-hammer]
#   --seeds N      number of consecutive seeds to run, starting at 1
#                  (default 20)
#   --iters N      iterations per seed (default 2000)
#   --build DIR    build tree containing tools/pecomp-fuzz (default build)
#   --out DIR      where findings and the summary land
#                  (default fuzz-out)
#   --save-novel   also persist coverage-novel cases into the out-dir
#                  corpus copy, growing mutation stock across seeds
#   --no-store-hammer
#                  skip the per-case DiskStore round trip (on by default;
#                  the hammer's scratch stores live under TMPDIR only and
#                  are removed when each seed's run exits)
#   --no-guarded   skip the guarded-dispatch tier (throughput mode)
#   --no-native    skip the native template-JIT tier
#
# Exits nonzero iff any run produced a finding (or failed outright), so
# the script doubles as a CI-friendly extended gate.
set -euo pipefail

cd "$(dirname "$0")/.."

SEEDS=20
ITERS=2000
BUILD_DIR=build
OUT_DIR=fuzz-out
SAVE_NOVEL=0
STORE_HAMMER=1
GUARDED=1
NATIVE=1
while [[ $# -gt 0 ]]; do
  case "$1" in
  --seeds) SEEDS=$2; shift 2 ;;
  --iters) ITERS=$2; shift 2 ;;
  --build) BUILD_DIR=$2; shift 2 ;;
  --out) OUT_DIR=$2; shift 2 ;;
  --save-novel) SAVE_NOVEL=1; shift ;;
  --no-store-hammer) STORE_HAMMER=0; shift ;;
  --no-guarded) GUARDED=0; shift ;;
  --no-native) NATIVE=0; shift ;;
  *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

FUZZ="$BUILD_DIR/tools/pecomp-fuzz"
if [[ ! -x "$FUZZ" ]]; then
  echo "fuzz-run: $FUZZ not built (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

mkdir -p "$OUT_DIR/findings" "$OUT_DIR/corpus"
# Work on a copy of the checked-in corpus so --save-novel growth (and any
# future dedup pruning) never dirties the repository.
cp -n testdata/fuzz-corpus/*.scm "$OUT_DIR/corpus/" 2>/dev/null || true

SUMMARY="$OUT_DIR/summary.json"
STATUS=0
{
  echo '{"runs": ['
  FIRST=1
  for ((S = 1; S <= SEEDS; S++)); do
    ARGS=(--seed="$S" --iters="$ITERS" --corpus="$OUT_DIR/corpus"
          --findings="$OUT_DIR/findings" --json)
    [[ $SAVE_NOVEL == 1 ]] && ARGS+=(--save-novel)
    [[ $STORE_HAMMER == 1 ]] && ARGS+=(--store-hammer)
    [[ $GUARDED == 0 ]] && ARGS+=(--no-guarded)
    [[ $NATIVE == 0 ]] && ARGS+=(--no-native)
    echo "== seed $S ($ITERS iters)" >&2
    if LINE=$("$FUZZ" "${ARGS[@]}" 2>"$OUT_DIR/seed-$S.log"); then
      RC=0
    else
      RC=$?
      STATUS=1
      cat "$OUT_DIR/seed-$S.log" >&2
    fi
    [[ $FIRST == 1 ]] || echo ','
    FIRST=0
    printf '{"seed": %d, "exit": %d, "stats": %s}' \
      "$S" "$RC" "${LINE:-null}"
  done
  echo
  echo '],'
  echo '"findings": ['
  FIRST=1
  for F in "$OUT_DIR"/findings/*.scm; do
    [[ -e "$F" ]] || break
    [[ $FIRST == 1 ]] || echo ','
    FIRST=0
    printf '{"file": "%s"}' "$F"
  done
  echo
  echo ']}'
} >"$SUMMARY"

# find, not ls: an unmatched glob makes ls exit 2, which pipefail+set -e
# would turn into a spurious nonzero exit on exactly the clean-hunt case.
COUNT=$(find "$OUT_DIR/findings" -name '*.scm' | wc -l)
echo "fuzz-run: $SEEDS seed(s) x $ITERS iteration(s); $COUNT finding file(s); summary: $SUMMARY"
exit $STATUS
