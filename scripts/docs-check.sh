#!/usr/bin/env bash
# Verifies that every repo path named in the documentation exists: a doc
# that points at src/vm/Machine.h after a rename (or a typo'd test name)
# is worse than no doc at all. Scans README.md, DESIGN.md, EXPERIMENTS.md,
# ROADMAP.md, and docs/*.md for path-like tokens under the repo's source
# directories and checks each against the working tree.
#
# A token matches as a file, a directory, or a C++ basename (the docs say
# "src/pgg/SpecCache" where both SpecCache.h and SpecCache.cpp exist).
# Generated artifacts (build/, BENCH_*.json) are intentionally out of
# scope: docs may name outputs that exist only after a build.
#
# Usage: scripts/docs-check.sh   (exit 0 = all paths resolve)
set -euo pipefail

cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)

STATUS=0
CHECKED=0
for DOC in "${DOCS[@]}"; do
  [ -f "$DOC" ] || continue
  # Path-like tokens rooted at a known source directory. Trailing
  # punctuation (sentence periods, commas, markdown backticks/parens)
  # is stripped by the tighter character class + cleanup below.
  while IFS= read -r P; do
    # Strip trailing characters that are valid in the regex but are
    # really sentence punctuation when they end the token.
    P="${P%.}"
    CHECKED=$((CHECKED + 1))
    if [ -e "$P" ] || [ -e "$P.cpp" ] || [ -e "$P.h" ]; then
      continue
    fi
    echo "docs-check: $DOC names missing path: $P" >&2
    STATUS=1
  done < <(grep -oE '(src|tests|docs|scripts|bench|tools|examples|testdata|fuzz)/[A-Za-z0-9_./-]*[A-Za-z0-9_]' "$DOC" | sort -u)
done

if [ "$CHECKED" -eq 0 ]; then
  echo "docs-check: no path tokens found — pattern broken?" >&2
  exit 1
fi
echo "docs-check: $CHECKED path references resolve" >&2
exit "$STATUS"
