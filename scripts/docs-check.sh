#!/usr/bin/env bash
# Verifies that every repo path named in the documentation exists: a doc
# that points at src/vm/Machine.h after a rename (or a typo'd test name)
# is worse than no doc at all. Scans README.md, DESIGN.md, EXPERIMENTS.md,
# ROADMAP.md, and docs/*.md for path-like tokens under the repo's source
# directories and checks each against the working tree.
#
# A token matches as a file, a directory, or a C++ basename (the docs say
# "src/pgg/SpecCache" where both SpecCache.h and SpecCache.cpp exist).
# Generated artifacts (build/, BENCH_*.json) are intentionally out of
# scope: docs may name outputs that exist only after a build.
#
# When a pecompc binary is available (env PECOMPC, or the default build
# tree), the README flag table is additionally cross-checked against the
# binary's --help in both directions: a flag documented in the table but
# absent from --help is a doc for a flag that doesn't exist; a flag in
# --help that the README never mentions is an undocumented knob. Without
# a binary this check is skipped (docs can be checked before a build).
#
# Usage: [PECOMPC=path/to/pecompc] scripts/docs-check.sh
#        (exit 0 = all paths resolve and the flag tables agree)
set -euo pipefail

cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)

STATUS=0
CHECKED=0
for DOC in "${DOCS[@]}"; do
  [ -f "$DOC" ] || continue
  # Path-like tokens rooted at a known source directory. Trailing
  # punctuation (sentence periods, commas, markdown backticks/parens)
  # is stripped by the tighter character class + cleanup below.
  while IFS= read -r P; do
    # Strip trailing characters that are valid in the regex but are
    # really sentence punctuation when they end the token.
    P="${P%.}"
    CHECKED=$((CHECKED + 1))
    if [ -e "$P" ] || [ -e "$P.cpp" ] || [ -e "$P.h" ]; then
      continue
    fi
    echo "docs-check: $DOC names missing path: $P" >&2
    STATUS=1
  done < <(grep -oE '(src|tests|docs|scripts|bench|tools|examples|testdata|fuzz)/[A-Za-z0-9_./-]*[A-Za-z0-9_]' "$DOC" | sort -u)
done

if [ "$CHECKED" -eq 0 ]; then
  echo "docs-check: no path tokens found — pattern broken?" >&2
  exit 1
fi
echo "docs-check: $CHECKED path references resolve" >&2

# --- README flag table vs. pecompc --help ------------------------------
PECOMPC="${PECOMPC:-build/tools/pecompc}"
if [ -x "$PECOMPC" ]; then
  HELP="$("$PECOMPC" --help 2>&1 || true)"
  FLAGS=0
  # Forward: every flag the README's table documents must exist. Rows
  # look like "| `--cache[=N]` | specrun, serve | ... |" — the first
  # cell may name several flags (`--stock` / `--anf` / `--direct`).
  while IFS= read -r F; do
    FLAGS=$((FLAGS + 1))
    if ! grep -qe "$F" <<<"$HELP"; then
      echo "docs-check: README documents $F but pecompc --help does not list it" >&2
      STATUS=1
    fi
  done < <(grep -E '^\| `--' README.md | cut -d'|' -f2 |
           grep -oE -- '--[a-z][a-z-]*' | sort -u)
  if [ "$FLAGS" -eq 0 ]; then
    echo "docs-check: no flag rows found in README — table moved?" >&2
    STATUS=1
  fi
  # Reverse: every flag --help advertises must be mentioned somewhere in
  # the README (undocumented knobs rot fastest).
  while IFS= read -r F; do
    FLAGS=$((FLAGS + 1))
    if ! grep -qe "$F" README.md; then
      echo "docs-check: pecompc --help lists $F but README never mentions it" >&2
      STATUS=1
    fi
  done < <(grep -oE -- '--[a-z][a-z-]*' <<<"$HELP" | sort -u)
  echo "docs-check: $FLAGS flag references cross-checked against --help" >&2
else
  echo "docs-check: pecompc not found at $PECOMPC — flag cross-check skipped" >&2
fi
exit "$STATUS"
