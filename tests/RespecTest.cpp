//===- tests/RespecTest.cpp - Online re-specialization and guards ---------===//
///
/// \file
/// The online profile-guided re-specialization loop end to end: censuses
/// trigger a background job, the installed variant serves behind its
/// argument guard, a mismatched argument deoptimizes to the generic code
/// with the identical result, and shutdown classifies every way a request
/// or job can die (Stopped, Rejected, Abandoned) in the service's own
/// error-code space. Alongside: the vm::callGuarded shim's parity
/// contract, and regressions for the profile-counter seams (saturation
/// instead of wrap, censuses surviving the between-requests reset).
///
//===----------------------------------------------------------------------===//

#include "StoreTestUtil.h"
#include "TestUtil.h"

#include "compiler/StockCompiler.h"
#include "pgg/RtcgService.h"
#include "vm/Guard.h"
#include "vm/Profile.h"

#include <thread>

using namespace pecomp;
using namespace pecomp::test;

namespace {

const char *PowerSrc = R"((define (power x n)
  (if (= n 0) 1 (* x (power x (- n 1))))))";

pgg::RtcgRequest powerReq(int64_t N, int64_t X) {
  pgg::RtcgRequest R;
  R.ProgramText = PowerSrc;
  R.Entry = "power";
  R.Division = "DS";
  R.SpecArgs = {"_", std::to_string(N)};
  R.RunArgs = {std::to_string(X)};
  return R;
}

int64_t ipow(int64_t X, int64_t N) {
  int64_t R = 1;
  while (N--)
    R *= X;
  return R;
}

pgg::RtcgOptions respecOptions(uint64_t HotThreshold = 4) {
  pgg::RtcgOptions O;
  O.Threads = 1; // deterministic: one worker sees every census
  O.Respec.Enabled = true;
  O.Respec.HotThreshold = HotThreshold;
  return O;
}

// -- The serving loop.

TEST(Respec, StableWorkloadInstallsAndServesVariant) {
  pgg::RtcgService S(respecOptions(4));
  // Warm-up burst: same key, same dynamic argument, past the threshold.
  std::vector<pgg::RtcgRequest> Warm;
  for (int I = 0; I != 6; ++I)
    Warm.push_back(powerReq(5, 2));
  for (const pgg::RtcgResponse &R : S.serveAll(std::move(Warm))) {
    ASSERT_TRUE(R.Ok) << R.ErrorText;
    EXPECT_EQ(R.Value, "32");
  }
  S.quiesceRespec();

  pgg::RespecStats RS = S.respecStats();
  EXPECT_GE(RS.SitesObserved, 1u);
  EXPECT_EQ(RS.JobsQueued, 1u);
  ASSERT_EQ(RS.Installed, 1u) << "failed: " << RS.Failed;
  EXPECT_EQ(RS.Failed, 0u);

  // Measured burst: every request must be served by the variant, with
  // the same value the generic code produced.
  std::vector<pgg::RtcgRequest> Hot;
  for (int I = 0; I != 8; ++I)
    Hot.push_back(powerReq(5, 2));
  size_t Respecialized = 0;
  for (const pgg::RtcgResponse &R : S.serveAll(std::move(Hot))) {
    ASSERT_TRUE(R.Ok) << R.ErrorText;
    EXPECT_EQ(R.Value, "32");
    Respecialized += R.Respecialized;
    EXPECT_FALSE(R.GuardMiss);
  }
  EXPECT_EQ(Respecialized, 8u);
  EXPECT_GE(S.respecStats().GuardHits, 8u);
}

TEST(Respec, GuardMissDeoptimizesToGeneric) {
  pgg::RtcgService S(respecOptions(4));
  std::vector<pgg::RtcgRequest> Warm;
  for (int I = 0; I != 6; ++I)
    Warm.push_back(powerReq(5, 2));
  S.serveAll(std::move(Warm));
  S.quiesceRespec();
  ASSERT_EQ(S.respecStats().Installed, 1u);

  // A different dynamic argument fails the guard and must fall through
  // to the generic code — correct value, GuardMiss flagged.
  std::vector<pgg::RtcgResponse> Rs =
      S.serveAll({powerReq(5, 3), powerReq(5, 2)});
  ASSERT_TRUE(Rs[0].Ok) << Rs[0].ErrorText;
  EXPECT_EQ(Rs[0].Value, "243");
  EXPECT_TRUE(Rs[0].GuardMiss);
  EXPECT_FALSE(Rs[0].Respecialized);
  // The stable value still hits.
  ASSERT_TRUE(Rs[1].Ok) << Rs[1].ErrorText;
  EXPECT_EQ(Rs[1].Value, "32");
  EXPECT_TRUE(Rs[1].Respecialized);
  pgg::RespecStats RS = S.respecStats();
  EXPECT_GE(RS.GuardMisses, 1u);
  EXPECT_GE(RS.GuardHits, 1u);
}

TEST(Respec, UnstableMixKeepsObserving) {
  // Three values in even rotation never let any slot reach a 0.9
  // stability bar (the share peaks at 0.5 after the first cycle and
  // decays toward 1/3), so the site must stay in Observing — no job, no
  // variant, and every response still correct.
  pgg::RtcgOptions O = respecOptions(4);
  O.Respec.MinStability = 0.9;
  pgg::RtcgService S(O);
  std::vector<pgg::RtcgRequest> Reqs;
  std::vector<std::string> Expected;
  for (int I = 0; I != 12; ++I) {
    int64_t X = 2 + I % 3;
    Reqs.push_back(powerReq(4, X));
    Expected.push_back(std::to_string(ipow(X, 4)));
  }
  std::vector<pgg::RtcgResponse> Rs = S.serveAll(std::move(Reqs));
  S.quiesceRespec();
  for (size_t I = 0; I != Rs.size(); ++I) {
    ASSERT_TRUE(Rs[I].Ok) << Rs[I].ErrorText;
    EXPECT_EQ(Rs[I].Value, Expected[I]);
    EXPECT_FALSE(Rs[I].Respecialized);
  }
  pgg::RespecStats RS = S.respecStats();
  EXPECT_EQ(RS.JobsQueued, 0u);
  EXPECT_EQ(RS.Installed, 0u);
  EXPECT_GE(RS.SitesObserved, 1u);
}

TEST(Respec, DisabledByDefaultSamplesNothing) {
  pgg::RtcgOptions O;
  O.Threads = 1;
  pgg::RtcgService S(O);
  std::vector<pgg::RtcgRequest> Reqs;
  for (int I = 0; I != 8; ++I)
    Reqs.push_back(powerReq(5, 2));
  for (const pgg::RtcgResponse &R : S.serveAll(std::move(Reqs))) {
    ASSERT_TRUE(R.Ok) << R.ErrorText;
    EXPECT_FALSE(R.Respecialized);
    EXPECT_FALSE(R.GuardMiss);
  }
  S.quiesceRespec(); // must not block with nothing in flight
  pgg::RespecStats RS = S.respecStats();
  EXPECT_EQ(RS.SitesObserved, 0u);
  EXPECT_EQ(RS.JobsQueued, 0u);
}

TEST(Respec, VariantSharedAcrossWorkers) {
  // The variant installs once but serves from every worker: the site
  // table and cache are shared, the guard check is per-request.
  pgg::RtcgOptions O = respecOptions(4);
  O.Threads = 4;
  pgg::RtcgService S(O);
  std::vector<pgg::RtcgRequest> Warm;
  for (int I = 0; I != 32; ++I)
    Warm.push_back(powerReq(5, 2));
  S.serveAll(std::move(Warm));
  S.quiesceRespec();
  if (S.respecStats().Installed == 0)
    GTEST_SKIP() << "censuses spread too thin across workers this run";
  std::vector<pgg::RtcgRequest> Hot;
  for (int I = 0; I != 32; ++I)
    Hot.push_back(powerReq(5, 2));
  size_t Respecialized = 0;
  for (const pgg::RtcgResponse &R : S.serveAll(std::move(Hot))) {
    ASSERT_TRUE(R.Ok) << R.ErrorText;
    EXPECT_EQ(R.Value, "32");
    Respecialized += R.Respecialized;
  }
  EXPECT_EQ(Respecialized, 32u);
}

// -- Shutdown classification (the service's own error-code space).

TEST(Respec, SubmitAfterStopIsRejected) {
  pgg::RtcgOptions O;
  O.Threads = 1;
  pgg::RtcgService S(O);
  S.stop();
  pgg::RtcgResponse R = S.submit(powerReq(3, 2)).get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ServiceCode, pgg::ServiceErrorCodeBase +
                               static_cast<int>(pgg::ServiceError::Rejected));
  EXPECT_EQ(R.TrapCode, 0);
  EXPECT_EQ(R.StoreCode, 0);
}

TEST(Respec, ServiceErrorClassification) {
  Error Stopped = pgg::serviceError(pgg::ServiceError::Stopped, "x");
  Error Rejected = pgg::serviceError(pgg::ServiceError::Rejected, "y");
  EXPECT_EQ(pgg::serviceErrorOf(Stopped), pgg::ServiceError::Stopped);
  EXPECT_EQ(pgg::serviceErrorOf(Rejected), pgg::ServiceError::Rejected);
  // Other code spaces never alias into this one.
  Error Plain("plain");
  EXPECT_EQ(pgg::serviceErrorOf(Plain), pgg::ServiceError::None);
  Error Trap("trap");
  Trap.setCode(3); // a vm::TrapKind
  EXPECT_EQ(pgg::serviceErrorOf(Trap), pgg::ServiceError::None);
  Error Store("store");
  Store.setCode(100 + 1); // a pgg::StoreError
  EXPECT_EQ(pgg::serviceErrorOf(Store), pgg::ServiceError::None);
  EXPECT_STREQ(pgg::serviceErrorName(pgg::ServiceError::Stopped), "Stopped");
  EXPECT_STREQ(pgg::serviceErrorName(pgg::ServiceError::Rejected), "Rejected");
}

TEST(Respec, StartThenImmediatelyDestroyStress) {
  // The shutdown race, hammered: submit a burst (respec enabled, a
  // threshold of 1 so jobs queue almost immediately) and destroy the
  // service without draining. Every future must resolve — served Ok, or
  // failed with the classified Stopped/Rejected code — and in-flight
  // re-specialization jobs must be installed or accounted abandoned,
  // never leaked (quiesceRespec inside the destructor path would hang
  // otherwise, and ASan/TSan runs of this test patrol the rest).
  for (int Round = 0; Round != 12; ++Round) {
    std::vector<std::future<pgg::RtcgResponse>> Futures;
    {
      pgg::RtcgOptions O = respecOptions(/*HotThreshold=*/1);
      O.Threads = 2;
      pgg::RtcgService S(O);
      for (int I = 0; I != 24; ++I)
        Futures.push_back(S.submit(powerReq(3 + I % 3, 2)));
      // Fall out of scope immediately: some requests served, the rest
      // must be failed by the destructor.
    }
    for (std::future<pgg::RtcgResponse> &F : Futures) {
      pgg::RtcgResponse R = F.get();
      if (R.Ok) {
        EXPECT_EQ(R.ServiceCode, 0);
        continue;
      }
      pgg::ServiceError E = pgg::serviceErrorOf(
          pgg::serviceError(static_cast<pgg::ServiceError>(
                                R.ServiceCode - pgg::ServiceErrorCodeBase),
                            R.ErrorText));
      EXPECT_TRUE(E == pgg::ServiceError::Stopped ||
                  E == pgg::ServiceError::Rejected)
          << "unclassified shutdown failure: " << R.ErrorText;
    }
  }
}

// -- The guard shim itself (vm/Guard.h).

TEST(Guard, HitRunsVariantMissRunsGeneric) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (gen x y) (+ (* 10 x) y))"
                           "(define (spec2 y) (+ 20 y))"));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::StockCompiler SC(Comp);
  compiler::CompiledProgram CP = SC.compileProgram(P);
  vm::Machine M(W.Heap);
  M.setFuel(1'000'000);
  vm::Profile Prof;
  M.setProfile(&Prof);
  compiler::linkProgram(M, Globals, CP);
  vm::Value Gen = M.getGlobal(*Globals.lookup(Symbol::intern("gen")));
  vm::Value Spec = M.getGlobal(*Globals.lookup(Symbol::intern("spec2")));

  vm::GuardPlan Plan;
  Plan.Slots = {0};
  Plan.Expected = {vm::Value::fixnum(2)};

  std::vector<vm::Value> HitArgs = {vm::Value::fixnum(2),
                                    vm::Value::fixnum(7)};
  bool Hit = false;
  PECOMP_UNWRAP(HV, vm::callGuarded(M, Spec, Plan, Gen, HitArgs, &Hit));
  EXPECT_TRUE(Hit);
  EXPECT_EQ(vm::valueToString(HV), "27");

  std::vector<vm::Value> MissArgs = {vm::Value::fixnum(3),
                                     vm::Value::fixnum(7)};
  PECOMP_UNWRAP(MV, vm::callGuarded(M, Spec, Plan, Gen, MissArgs, &Hit));
  EXPECT_FALSE(Hit);
  EXPECT_EQ(vm::valueToString(MV), "37");

  EXPECT_EQ(Prof.GuardHits, 1u);
  EXPECT_EQ(Prof.GuardMisses, 1u);
}

TEST(Guard, MissLegMatchesDirectCallExactly) {
  // The parity contract: a guard miss is bit-identical to calling the
  // generic code directly — same value AND same executed-instruction
  // count (the guard lives outside the dispatch loops and costs no
  // fuel). Two fresh machines over the same snapshot-equivalent program.
  const char *Src = "(define (gen x y) (if (= x 0) y (+ (* x x) y)))";
  World W;
  PECOMP_UNWRAP(P, W.parse(Src));
  std::vector<vm::Value> Args = {vm::Value::fixnum(4), vm::Value::fixnum(5)};

  auto RunDirect = [&](uint64_t &Insns) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::StockCompiler SC(Comp);
    compiler::CompiledProgram CP = SC.compileProgram(P);
    vm::Machine M(W.Heap);
    M.setFuel(1'000'000);
    vm::Profile Prof;
    M.setProfile(&Prof);
    compiler::linkProgram(M, Globals, CP);
    vm::Value Gen = M.getGlobal(*Globals.lookup(Symbol::intern("gen")));
    Result<vm::Value> R = M.call(Gen, Args);
    Insns = Prof.instructions();
    return R;
  };
  auto RunGuardedMiss = [&](uint64_t &Insns) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::StockCompiler SC(Comp);
    compiler::CompiledProgram CP = SC.compileProgram(P);
    vm::Machine M(W.Heap);
    M.setFuel(1'000'000);
    vm::Profile Prof;
    M.setProfile(&Prof);
    compiler::linkProgram(M, Globals, CP);
    vm::Value Gen = M.getGlobal(*Globals.lookup(Symbol::intern("gen")));
    vm::GuardPlan Plan;
    Plan.Slots = {0};
    Plan.Expected = {vm::Value::fixnum(-99)}; // never matches
    bool Hit = true;
    Result<vm::Value> R = vm::callGuarded(M, Gen, Plan, Gen, Args, &Hit);
    EXPECT_FALSE(Hit);
    Insns = Prof.instructions();
    return R;
  };

  uint64_t DirectInsns = 0, GuardedInsns = 0;
  PECOMP_UNWRAP(DV, RunDirect(DirectInsns));
  PECOMP_UNWRAP(GV, RunGuardedMiss(GuardedInsns));
  expectValueEq(DV, GV);
  EXPECT_EQ(DirectInsns, GuardedInsns);
}

TEST(Guard, StalePlanDegradesNeverTraps) {
  // Out-of-range guard slots fail the guard (generic path) rather than
  // reading past the argument vector.
  vm::GuardPlan Plan;
  Plan.Slots = {5};
  Plan.Expected = {vm::Value::fixnum(1)};
  std::vector<vm::Value> Args = {vm::Value::fixnum(1)};
  EXPECT_FALSE(vm::guardsHold(Plan, Args));
  // An empty plan holds vacuously (the variant *is* the generic code).
  EXPECT_TRUE(vm::guardsHold(vm::GuardPlan(), Args));
}

TEST(Guard, ResidualArgsDropGuardedSlots) {
  vm::GuardPlan Plan;
  Plan.Slots = {0, 2};
  Plan.Expected = {vm::Value::fixnum(1), vm::Value::fixnum(3)};
  std::vector<vm::Value> Args = {vm::Value::fixnum(1), vm::Value::fixnum(2),
                                 vm::Value::fixnum(3), vm::Value::fixnum(4)};
  std::vector<vm::Value> Rest = vm::residualArgs(Plan, Args);
  ASSERT_EQ(Rest.size(), 2u);
  EXPECT_EQ(vm::valueToString(Rest[0]), "2");
  EXPECT_EQ(vm::valueToString(Rest[1]), "4");
}

// -- Profile-counter seams (the bugfix sweep's regressions).

TEST(Profile, SatIncSaturatesInsteadOfWrapping) {
  uint64_t C = UINT64_MAX - 1;
  vm::satInc(C);
  EXPECT_EQ(C, UINT64_MAX);
  vm::satInc(C); // at the ceiling: stays, never wraps to 0
  EXPECT_EQ(C, UINT64_MAX);
  uint64_t D = UINT64_MAX - 3;
  vm::satInc(D, 100);
  EXPECT_EQ(D, UINT64_MAX);
}

TEST(Profile, AccumulateSaturatesMergedCounters) {
  // The regression that motivated satInc: two near-ceiling worker
  // profiles merged across requests must pin at UINT64_MAX, not wrap —
  // a wrapped row turns the hottest counter into the coldest.
  vm::Profile A, B;
  A.OpCount[0] = UINT64_MAX - 10;
  B.OpCount[0] = 100;
  A.Calls = UINT64_MAX;
  B.Calls = 1;
  A.GuardHits = UINT64_MAX - 1;
  B.GuardHits = 5;
  A.accumulate(B);
  EXPECT_EQ(A.OpCount[0], UINT64_MAX);
  EXPECT_EQ(A.Calls, UINT64_MAX);
  EXPECT_EQ(A.GuardHits, UINT64_MAX);
}

TEST(Profile, ResetDispatchKeepsArgumentCensuses) {
  // The between-requests reset a serving worker does: dispatch counters
  // must not bleed into the next request's numbers, but the censuses are
  // cross-request evidence and must survive.
  vm::Profile P;
  P.SampleArgs = true;
  std::vector<vm::Value> Args = {vm::Value::fixnum(42)};
  P.sampleCall("site", Args);
  P.sampleCall("site", Args);
  P.OpCount[0] = 7;
  P.Calls = 3;
  P.GuardHits = 2;

  P.resetDispatch();
  EXPECT_EQ(P.OpCount[0], 0u);
  EXPECT_EQ(P.Calls, 0u);
  EXPECT_EQ(P.GuardHits, 0u);
  ASSERT_EQ(P.CallSites.count("site"), 1u);
  EXPECT_EQ(P.CallSites["site"].Calls, 2u);
  ASSERT_EQ(P.CallSites["site"].Slots.size(), 1u);
  EXPECT_DOUBLE_EQ(P.CallSites["site"].Slots[0].topShare(), 1.0);

  // The delta-handoff: takeCallSite extracts and erases, so the same
  // observation can never be folded into the policy twice.
  vm::CallSiteSample Sample = P.takeCallSite("site");
  EXPECT_EQ(Sample.Calls, 2u);
  EXPECT_EQ(P.CallSites.count("site"), 0u);
  EXPECT_EQ(P.takeCallSite("site").Calls, 0u);
}

TEST(Profile, CensusPoisonsUnrenderableValues) {
  vm::ArgCensus C;
  C.observe("7");
  C.observe("#<procedure f>"); // no injective rendering: never guardable
  C.observe("7");
  EXPECT_FALSE(C.Sampleable);
  EXPECT_DOUBLE_EQ(C.topShare(), 0.0);
  // Sticky through merges, in both directions.
  vm::ArgCensus Clean;
  Clean.observe("7");
  Clean.merge(C);
  EXPECT_FALSE(Clean.Sampleable);
}

TEST(Profile, CensusOverflowCountsAgainstShare) {
  vm::ArgCensus C;
  for (size_t I = 0; I != vm::ArgCensus::MaxDistinct; ++I)
    C.observe(std::to_string(100 + I));
  C.observe("999"); // beyond MaxDistinct: lands in Overflow
  EXPECT_EQ(C.Overflow, 1u);
  EXPECT_EQ(C.total(), vm::ArgCensus::MaxDistinct + 1);
  // No tracked value owns more than 1/(MaxDistinct+1).
  EXPECT_LT(C.topShare(), 0.2);
}

} // namespace
