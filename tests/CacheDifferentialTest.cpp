//===- tests/CacheDifferentialTest.cpp - Randomized cache parity ----------===//
///
/// \file
/// Seeded random differential testing of the specialization cache: for
/// random (program text, division, static input) triples, the cached-hit
/// path — capture, insert, lookup, instantiate into a *fresh* heap — must
/// produce exactly what the cold path and the reference interpreter
/// produce, on both VM dispatch loops. This is the PR 4 analogue of
/// RandomProgramTest's mix-equation check, aimed at the snapshot /
/// relocation machinery instead of the specializer.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/Link.h"
#include "compiler/Peephole.h"
#include "pgg/SpecCache.h"

#include <array>
#include <random>
#include <set>

using namespace pecomp;
using namespace pecomp::test;

namespace {

/// Generates terminating, error-free integer programs as *source text*
/// (the cache is keyed on text, so the generator stays at the external
/// boundary). Calls form a DAG over earlier definitions; operators are
/// total on fixnums (+, -, *, comparisons), so every engine must agree.
class TextProgramGen {
public:
  explicit TextProgramGen(uint32_t Seed) : Rng(Seed) {}

  struct Def {
    std::string Name;
    unsigned Arity;
  };

  std::string program() {
    Defs.clear();
    std::string Out;
    size_t NumDefs = 2 + Rng() % 3;
    for (size_t I = 0; I != NumDefs; ++I) {
      unsigned Arity = 1 + Rng() % 3;
      std::vector<std::string> Params;
      for (unsigned J = 0; J != Arity; ++J)
        Params.push_back("p" + std::to_string(I) + "_" + std::to_string(J));
      std::string Body = expr(3, Params);
      std::string Name = "fn" + std::to_string(I);
      Out += "(define (" + Name;
      for (const std::string &P : Params)
        Out += " " + P;
      Out += ") " + Body + ")\n";
      Defs.push_back({Name, Arity});
    }
    return Out;
  }

  const Def &entry() const { return Defs.back(); }

  int64_t randomArg() { return static_cast<int64_t>(Rng() % 41) - 20; }
  uint32_t random() { return Rng(); }

private:
  std::string expr(unsigned Depth, const std::vector<std::string> &Params) {
    if (Depth == 0)
      return leaf(Params);
    switch (Rng() % 8) {
    case 0:
      return leaf(Params);
    case 1:
    case 2: {
      const char *Op = std::array{"+", "-", "*"}[Rng() % 3];
      return std::string("(") + Op + " " + expr(Depth - 1, Params) + " " +
             expr(Depth - 1, Params) + ")";
    }
    case 3: {
      std::string Test;
      switch (Rng() % 4) {
      case 0:
        Test = "(zero? " + expr(Depth - 1, Params) + ")";
        break;
      case 1:
        Test = "(< " + expr(Depth - 1, Params) + " " +
               expr(Depth - 1, Params) + ")";
        break;
      case 2:
        Test = "(= " + expr(Depth - 1, Params) + " " +
               expr(Depth - 1, Params) + ")";
        break;
      default:
        Test = "(>= " + expr(Depth - 1, Params) + " " +
               expr(Depth - 1, Params) + ")";
      }
      return "(if " + Test + " " + expr(Depth - 1, Params) + " " +
             expr(Depth - 1, Params) + ")";
    }
    case 4:
    case 5: {
      // Call an earlier definition (keeps the call graph a DAG).
      if (Defs.empty())
        return leaf(Params);
      const Def &Callee = Defs[Rng() % Defs.size()];
      std::string Out = "(" + Callee.Name;
      for (unsigned I = 0; I != Callee.Arity; ++I)
        Out += " " + expr(Depth - 1, Params);
      return Out + ")";
    }
    default:
      return leaf(Params);
    }
  }

  std::string leaf(const std::vector<std::string> &Params) {
    if (!Params.empty() && Rng() % 2)
      return Params[Rng() % Params.size()];
    return std::to_string(static_cast<int64_t>(Rng() % 21) - 10);
  }

  std::mt19937 Rng;
  std::vector<Def> Defs;
};

/// Instantiates \p Port into a fresh world and runs its entry on \p Dyn
/// under the requested dispatch strategy.
Result<vm::Value> runCached(const compiler::PortableProgram &Port,
                            Symbol Entry, const std::vector<int64_t> &Dyn,
                            bool DecodedDispatch, bool Fusion = false) {
  World W;
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::CompiledProgram CP = Port.instantiate(Store, Globals);
  std::vector<vm::Value> Args;
  for (int64_t D : Dyn)
    Args.push_back(vm::Value::fixnum(D));
  vm::Machine M(W.Heap);
  M.setFuel(50'000'000);
  M.setDecodedDispatch(DecodedDispatch);
  M.setFusion(Fusion);
  if (Result<bool> Linked = compiler::linkProgramVerified(M, Globals, CP);
      !Linked)
    return Linked.takeError();
  return compiler::callGlobal(M, Globals, Entry, Args);
}

TEST(CacheDifferential, HitEqualsColdEqualsOracleAcrossLoops) {
  // Fixnum results only, so cross-world comparison needs no shared heap.
  for (uint32_t Seed = 1; Seed <= 40; ++Seed) {
    TextProgramGen G(Seed);
    std::string Src = G.program();
    const std::string Entry = G.entry().Name;
    unsigned Arity = G.entry().Arity;
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Src);

    // Random requested division; the BTA may promote parameters, so the
    // static/dynamic split below follows the *effective* division (the
    // same one the residual entry's parameter list follows).
    std::string Division;
    for (unsigned I = 0; I != Arity; ++I)
      Division += (G.random() % 2) ? 'S' : 'D';

    World W;
    PECOMP_UNWRAP(P, W.parse(Src));
    auto GenR =
        pgg::GeneratingExtension::create(W.Heap, Src, Entry, Division);
    ASSERT_TRUE(GenR.ok()) << GenR.error().render();
    std::vector<bta::BT> Eff = (*GenR)->effectiveDivision();
    ASSERT_EQ(Eff.size(), Arity);

    std::vector<std::optional<vm::Value>> SpecArgs;
    std::vector<int64_t> DynArgs;
    std::vector<vm::Value> OracleArgs;
    for (unsigned I = 0; I != Arity; ++I) {
      int64_t A = G.randomArg();
      OracleArgs.push_back(vm::Value::fixnum(A));
      if (Eff[I] == bta::BT::Static) {
        SpecArgs.emplace_back(vm::Value::fixnum(A));
      } else {
        SpecArgs.emplace_back(std::nullopt);
        DynArgs.push_back(A);
      }
    }

    PECOMP_UNWRAP(Oracle, W.evalCall(P, Entry, OracleArgs));
    ASSERT_TRUE(Oracle.isFixnum());

    // Cold fused path.
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    auto ObjR = (*GenR)->generateObject(Comp, SpecArgs);
    ASSERT_TRUE(ObjR.ok()) << ObjR.error().render();
    std::vector<vm::Value> DynVals;
    for (int64_t D : DynArgs)
      DynVals.push_back(vm::Value::fixnum(D));
    PECOMP_UNWRAP(Cold, W.runCompiled(Globals, ObjR->Residual, ObjR->Entry,
                                      DynVals));
    expectValueEq(Cold, Oracle);

    // Cache the capture, then serve the hit into fresh heaps: the decoded
    // loop and the byte loop must both reproduce the oracle.
    auto PortR = compiler::PortableProgram::capture(ObjR->Residual, Globals);
    ASSERT_TRUE(PortR.ok()) << PortR.error().render();
    pgg::SpecCache Cache(/*MaxBytes=*/0);
    pgg::SpecKey Key = pgg::makeSpecKey(
        pgg::fingerprintProgram(Src, Entry, Division), SpecArgs);
    auto Cached = std::make_shared<pgg::CachedSpecialization>();
    Cached->Residual = *PortR;
    Cached->Entry = ObjR->Entry;
    Cache.insert(Key, Cached);

    auto Hit = Cache.lookup(pgg::makeSpecKey(
        pgg::fingerprintProgram(Src, Entry, Division), SpecArgs));
    ASSERT_NE(Hit, nullptr);
    PECOMP_UNWRAP(Decoded, runCached(*Hit->Residual, Hit->Entry, DynArgs,
                                     /*DecodedDispatch=*/true));
    expectValueEq(Decoded, Oracle);
    PECOMP_UNWRAP(Fused, runCached(*Hit->Residual, Hit->Entry, DynArgs,
                                   /*DecodedDispatch=*/true,
                                   /*Fusion=*/true));
    expectValueEq(Fused, Oracle);
    PECOMP_UNWRAP(Bytes, runCached(*Hit->Residual, Hit->Entry, DynArgs,
                                   /*DecodedDispatch=*/false));
    expectValueEq(Bytes, Oracle);
  }
}

TEST(CacheDifferential, HitsInstantiatePeepholedCodeWithoutReoptimizing) {
  // A snapshot captured *after* the peephole pass must hand hits the
  // already-optimized bytes: the instantiated objects carry the flag, a
  // second pass finds nothing to visit, and the code still answers like
  // the oracle on every dispatch strategy.
  TextProgramGen G(11);
  std::string Src = G.program();
  const std::string Entry = G.entry().Name;
  unsigned Arity = G.entry().Arity;
  std::string Division(Arity, 'D');

  World W;
  PECOMP_UNWRAP(P, W.parse(Src));
  auto GenR = pgg::GeneratingExtension::create(W.Heap, Src, Entry, Division);
  ASSERT_TRUE(GenR.ok()) << GenR.error().render();

  std::vector<std::optional<vm::Value>> SpecArgs(Arity, std::nullopt);
  std::vector<int64_t> DynArgs;
  std::vector<vm::Value> OracleArgs;
  for (unsigned I = 0; I != Arity; ++I) {
    int64_t A = G.randomArg();
    DynArgs.push_back(A);
    OracleArgs.push_back(vm::Value::fixnum(A));
  }
  PECOMP_UNWRAP(Oracle, W.evalCall(P, Entry, OracleArgs));

  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  auto ObjR = (*GenR)->generateObject(Comp, SpecArgs);
  ASSERT_TRUE(ObjR.ok()) << ObjR.error().render();
  compiler::peepholeProgram(ObjR->Residual);
  auto PortR = compiler::PortableProgram::capture(ObjR->Residual, Globals);
  ASSERT_TRUE(PortR.ok()) << PortR.error().render();

  World Fresh;
  vm::CodeStore FreshStore(Fresh.Heap);
  vm::GlobalTable FreshGlobals;
  compiler::CompiledProgram CP =
      (*PortR)->instantiate(FreshStore, FreshGlobals);
  for (const auto &[Name, Code] : CP.Defs)
    EXPECT_TRUE(Code->peepholed()) << Name.str();
  compiler::PeepholeStats Again = compiler::peepholeProgram(CP);
  EXPECT_EQ(Again.ObjectsVisited, 0u);
  EXPECT_EQ(Again.rewrites(), 0u);

  for (bool Fusion : {false, true}) {
    PECOMP_UNWRAP(R, runCached(**PortR, ObjR->Entry, DynArgs,
                               /*DecodedDispatch=*/true, Fusion));
    expectValueEq(R, Oracle);
  }
}

TEST(CacheDifferential, DistinctStaticsNeverCollide) {
  // Same program, same division, different static values: the keys must
  // differ (a collision would serve the wrong specialization, the worst
  // failure mode a code cache can have).
  TextProgramGen G(7);
  std::string Src = G.program();
  const std::string Entry = G.entry().Name;
  unsigned Arity = G.entry().Arity;
  std::string Division(Arity, 'S');
  uint64_t Fp = pgg::fingerprintProgram(Src, Entry, Division);

  std::set<std::string> SigsSeen;
  std::mt19937 Rng(99);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<std::optional<vm::Value>> Args;
    std::string Spelled;
    for (unsigned I = 0; I != Arity; ++I) {
      int64_t A = static_cast<int64_t>(Rng() % 1000) - 500;
      Args.emplace_back(vm::Value::fixnum(A));
      Spelled += std::to_string(A) + ",";
    }
    pgg::SpecKey K = pgg::makeSpecKey(Fp, Args);
    // Distinct argument tuples yield distinct StaticSigs; equal tuples
    // yield equal keys (set semantics check both directions).
    bool NewTuple = SigsSeen.insert(Spelled).second;
    pgg::SpecKey K2 = pgg::makeSpecKey(Fp, Args);
    EXPECT_TRUE(K == K2);
    (void)NewTuple;
    EXPECT_EQ(K.StaticSig.empty(), Arity == 0);
  }
  // Direct pairwise check on a small sample.
  std::vector<std::optional<vm::Value>> A{vm::Value::fixnum(1)};
  std::vector<std::optional<vm::Value>> B{vm::Value::fixnum(-1)};
  while (A.size() < Arity) {
    A.emplace_back(vm::Value::fixnum(0));
    B.emplace_back(vm::Value::fixnum(0));
  }
  EXPECT_FALSE(pgg::makeSpecKey(Fp, A) == pgg::makeSpecKey(Fp, B));
}

} // namespace
