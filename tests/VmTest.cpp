//===- tests/VmTest.cpp - Value, heap/GC, and machine unit tests -----------===//

#include "TestUtil.h"

#include "support/Casting.h"

using namespace pecomp;
using namespace pecomp::test;
using vm::Value;

namespace {

// -- Value tagging ------------------------------------------------------------

TEST(ValueTest, FixnumRoundTrip) {
  for (int64_t N : {0L, 1L, -1L, 1234567L, -9876543L,
                    (1L << 60), -(1L << 60)}) {
    Value V = Value::fixnum(N);
    EXPECT_TRUE(V.isFixnum());
    EXPECT_EQ(V.asFixnum(), N);
    EXPECT_FALSE(V.isObject());
    EXPECT_FALSE(V.isSymbol());
  }
}

TEST(ValueTest, ImmediatesAreDistinct) {
  EXPECT_NE(Value::boolean(true), Value::boolean(false));
  EXPECT_NE(Value::nil(), Value::boolean(false));
  EXPECT_NE(Value::unspecified(), Value::nil());
  EXPECT_TRUE(Value::nil().isNil());
  EXPECT_TRUE(Value::unspecified().isUnspecified());
}

TEST(ValueTest, TruthinessFollowsScheme) {
  EXPECT_FALSE(Value::boolean(false).isTruthy());
  EXPECT_TRUE(Value::boolean(true).isTruthy());
  EXPECT_TRUE(Value::fixnum(0).isTruthy());
  EXPECT_TRUE(Value::nil().isTruthy());
}

TEST(ValueTest, SymbolRoundTrip) {
  Symbol S = Symbol::intern("a-symbol");
  Value V = Value::symbol(S);
  EXPECT_TRUE(V.isSymbol());
  EXPECT_EQ(V.asSymbol(), S);
}

TEST(ValueTest, CharRoundTrip) {
  Value V = Value::character('Z');
  EXPECT_TRUE(V.isChar());
  EXPECT_EQ(V.asChar(), 'Z');
}

TEST(ValueTest, DefaultValueIsInvalid) {
  EXPECT_FALSE(Value().isValid());
  EXPECT_TRUE(Value::fixnum(0).isValid());
}

// -- Structural equality and hashing ---------------------------------------------

TEST(ValueTest, StructuralEqualityOnLists) {
  vm::Heap H;
  Value A = H.pair(Value::fixnum(1), H.pair(Value::fixnum(2), Value::nil()));
  Value B = H.pair(Value::fixnum(1), H.pair(Value::fixnum(2), Value::nil()));
  EXPECT_NE(A, B); // different identities
  EXPECT_TRUE(vm::valueEquals(A, B));
  EXPECT_EQ(vm::valueHash(A), vm::valueHash(B));
}

TEST(ValueTest, StructuralEqualityOnStrings) {
  vm::Heap H;
  EXPECT_TRUE(vm::valueEquals(H.string("abc"), H.string("abc")));
  EXPECT_FALSE(vm::valueEquals(H.string("abc"), H.string("abd")));
}

TEST(ValueTest, UnequalStructuresDiffer) {
  vm::Heap H;
  Value A = H.pair(Value::fixnum(1), Value::nil());
  Value B = H.pair(Value::fixnum(2), Value::nil());
  EXPECT_FALSE(vm::valueEquals(A, B));
  Value C = H.pair(Value::fixnum(1), Value::fixnum(1));
  EXPECT_FALSE(vm::valueEquals(A, C));
}

TEST(ValueTest, BoxesCompareByIdentity) {
  vm::Heap H;
  Value A = H.box(Value::fixnum(1));
  Value B = H.box(Value::fixnum(1));
  EXPECT_TRUE(vm::valueEquals(A, A));
  EXPECT_FALSE(vm::valueEquals(A, B));
}

TEST(ValueTest, ValueToStringMatchesWriter) {
  vm::Heap H;
  Value V = H.pair(Value::fixnum(1),
                   H.pair(Value::symbol(Symbol::intern("x")), Value::nil()));
  EXPECT_EQ(vm::valueToString(V), "(1 x)");
  EXPECT_EQ(vm::valueToString(Value::boolean(false)), "#f");
  EXPECT_EQ(vm::valueToString(H.pair(Value::fixnum(1), Value::fixnum(2))),
            "(1 . 2)");
}

// -- Heap and GC ----------------------------------------------------------------

TEST(HeapTest, CollectReclaimsUnreachableObjects) {
  vm::Heap H;
  for (int I = 0; I != 1000; ++I)
    H.pair(Value::fixnum(I), Value::nil());
  EXPECT_EQ(H.liveObjects(), 1000u);
  H.collect();
  EXPECT_EQ(H.liveObjects(), 0u);
}

TEST(HeapTest, PinnedObjectsSurvive) {
  vm::Heap H;
  Value Kept = H.pair(Value::fixnum(1), Value::nil());
  H.pin(Kept);
  H.pair(Value::fixnum(2), Value::nil()); // garbage
  H.collect();
  EXPECT_EQ(H.liveObjects(), 1u);
  EXPECT_EQ(cast<vm::PairObject>(Kept.asObject())->Car, Value::fixnum(1));
}

TEST(HeapTest, RootScopeProtectsAndReleases) {
  vm::Heap H;
  {
    vm::RootScope Scope(H);
    Scope.protect(H.pair(Value::fixnum(1), Value::nil()));
    H.collect();
    EXPECT_EQ(H.liveObjects(), 1u);
  }
  H.collect();
  EXPECT_EQ(H.liveObjects(), 0u);
}

TEST(HeapTest, MarkTracesDeepStructures) {
  // A 100k-element list must be fully traced without C++ stack overflow.
  vm::Heap H;
  vm::RootScope Scope(H);
  Value &List = Scope.protect(Value::nil());
  for (int I = 0; I != 100000; ++I)
    List = H.pair(Value::fixnum(I), List);
  H.collect();
  EXPECT_EQ(H.liveObjects(), 100000u);
}

TEST(HeapTest, TracesThroughBoxesAndClosures) {
  vm::Heap H;
  vm::RootScope Scope(H);
  Value Inner = H.pair(Value::fixnum(7), Value::nil());
  Scope.protect(H.box(Inner));
  H.collect();
  EXPECT_EQ(H.liveObjects(), 2u);
}

TEST(HeapTest, AllocationArgumentsSurviveStressCollection) {
  // In stress mode every allocation collects; the arguments of the
  // in-flight allocation must be protected by the heap itself.
  vm::Heap H;
  H.setStressMode(true);
  vm::RootScope Scope(H);
  Value &List = Scope.protect(Value::nil());
  for (int I = 0; I != 100; ++I)
    List = H.pair(Value::fixnum(I), List);
  // Verify the whole list is intact.
  Value Cursor = List;
  for (int I = 99; I >= 0; --I) {
    auto *P = cast<vm::PairObject>(Cursor.asObject());
    EXPECT_EQ(P->Car, Value::fixnum(I));
    Cursor = P->Cdr;
  }
  EXPECT_GE(H.totalCollections(), 100u);
}

TEST(HeapTest, ListBuilderProtectsItsSpine) {
  vm::Heap H;
  H.setStressMode(true);
  std::vector<Value> Elems = {Value::fixnum(1), Value::fixnum(2),
                              Value::fixnum(3)};
  Value L = H.list(Elems);
  EXPECT_EQ(vm::valueToString(L), "(1 2 3)");
}

// -- Machine behaviour -------------------------------------------------------------

TEST(MachineTest, ReportsArityMismatch) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x y) (+ x y))"));
  Result<vm::Value> R = W.runAnf(P, "f", {W.num(1)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("expects 2"), std::string::npos);
}

TEST(MachineTest, ReportsCallOfNonProcedure) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (x 1))"));
  Result<vm::Value> R = W.runAnf(P, "f", {W.num(3)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("not a procedure"), std::string::npos);
}

TEST(MachineTest, FuelLimitStopsRunawayLoops) {
  World W;
  vm::Heap &H = W.Heap;
  PECOMP_UNWRAP(P, W.parse("(define (spin) (spin))"));
  Program Anf = anfConvert(P, W.Exprs);
  vm::CodeStore Store(H);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(Anf);
  vm::Machine M(H);
  M.setFuel(10000);
  compiler::linkProgram(M, Globals, CP);
  Result<vm::Value> R =
      compiler::callGlobal(M, Globals, Symbol::intern("spin"), {});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("fuel"), std::string::npos);
}

TEST(MachineTest, RuntimeErrorNamesTheFunction) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (oops x) (car x))"));
  Result<vm::Value> R = W.runAnf(P, "oops", {W.num(1)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("oops"), std::string::npos);
}

TEST(MachineTest, GcRunsDuringExecutionWithoutCorruption) {
  // Build a large list at run time with a stressed heap.
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(P, W.parse("(define (iota n) (if (zero? n) '() "
                           "(cons n (iota (- n 1)))))"
                           "(define (len xs) (if (null? xs) 0 "
                           "(+ 1 (len (cdr xs)))))"
                           "(define (go n) (len (iota n)))"));
  PECOMP_UNWRAP(R, W.runAnf(P, "go", {W.num(200)}));
  expectValueEq(R, W.num(200));
  EXPECT_GT(W.Heap.totalCollections(), 0u);
}

// -- Code objects --------------------------------------------------------------------

TEST(CodeTest, DisassemblerCoversEveryOpcode) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (if (zero? x) (g (lambda (y) "
                           "(+ y x))) '(a b)))"
                           "(define (g h) (h 1))"));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::StockCompiler SC(Comp);
  compiler::CompiledProgram CP = SC.compileProgram(P);
  std::string Dis = CP.Defs[0].second->disassemble();
  for (const char *Expected :
       {"local", "global", "closure", "jump-if-false", "prim", "return"})
    EXPECT_NE(Dis.find(Expected), std::string::npos) << Dis;
}

TEST(CodeTest, CodeEqualsDistinguishesPrograms) {
  World W;
  PECOMP_UNWRAP(P1, W.parse("(define (f x) (+ x 1))"));
  PECOMP_UNWRAP(P2, W.parse("(define (f x) (+ x 2))"));
  PECOMP_UNWRAP(P3, W.parse("(define (f x) (+ x 1))"));

  vm::CodeStore Store(W.Heap); // one store outlives the comparisons
  auto Compile = [&](const Program &P) {
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::AnfCompiler AC(Comp);
    Program Anf = anfConvert(P, W.Exprs);
    return AC.compileProgram(Anf).Defs[0].second;
  };

  const vm::CodeObject *C1 = Compile(P1);
  const vm::CodeObject *C2 = Compile(P2);
  const vm::CodeObject *C3 = Compile(P3);
  EXPECT_FALSE(vm::codeEquals(C1, C2));
  EXPECT_TRUE(vm::codeEquals(C1, C3));
}

} // namespace
