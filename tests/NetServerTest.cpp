//===- tests/NetServerTest.cpp - Loopback end-to-end serving --------------===//
///
/// \file
/// The networked front end against real sockets on the loopback
/// interface: response parity against the in-process service (including
/// traps and classified errors), pipelining on one connection,
/// per-tenant quota and cache-partition isolation, the classified
/// Overloaded shed, version skew, garbage streams, and backpressure
/// pause/resume. Every test binds port 0 (ephemeral) so suites can run
/// concurrently.
///
//===----------------------------------------------------------------------===//

#include "pgg/NetClient.h"
#include "pgg/NetServer.h"
#include "pgg/RtcgService.h"
#include "pgg/TenantTable.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstring>
#include <sys/socket.h>
#include <thread>

using namespace pecomp;
using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

namespace {

const char *PowerSrc = R"((define (power x n)
  (if (= n 0) 1 (* x (power x (- n 1))))))";

/// Builds a list of N sevens — responses of tunable size for the
/// backpressure test.
const char *RepSrc = R"((define (rep n)
  (if (= n 0) (quote ()) (cons 7 (rep (- n 1))))))";

RtcgRequest powerTemplate() {
  RtcgRequest T;
  T.ProgramText = PowerSrc;
  T.Entry = "power";
  T.Division = "DS";
  return T;
}

NetRequest powerNetReq(int64_t N, int64_t X) {
  NetRequest R;
  R.SpecArgs = {"_", std::to_string(N)};
  R.RunArgs = {std::to_string(X)};
  return R;
}

int64_t ipow(int64_t X, int64_t N) {
  int64_t R = 1;
  while (N--)
    R *= X;
  return R;
}

/// One running server over one service; teardown stops the loop before
/// anything it references is destroyed.
struct Loopback {
  std::unique_ptr<RtcgService> Service;
  std::unique_ptr<NetServer> Server;
  std::thread Loop;

  void start(RtcgOptions O, NetServerOptions NO = {},
             RtcgRequest Template = powerTemplate()) {
    Service = std::make_unique<RtcgService>(std::move(O));
    Result<std::unique_ptr<NetServer>> S =
        NetServer::create(*Service, std::move(Template), std::move(NO));
    ASSERT_TRUE(S.ok()) << S.error().message();
    Server = std::move(*S);
    Loop = std::thread([this] { Server->run(); });
  }

  NetClient client(int RcvBufBytes = 0) {
    Result<NetClient> C =
        NetClient::connect("127.0.0.1", Server->port(), RcvBufBytes);
    EXPECT_TRUE(C.ok()) << (C.ok() ? "" : C.error().message());
    return C.ok() ? std::move(*C) : NetClient();
  }

  void stop() {
    if (Server && Loop.joinable()) {
      Server->requestStop();
      Loop.join();
    }
  }

  ~Loopback() {
    stop();
    Server.reset();  // before the service it points into
    Service.reset();
  }
};

TEST(NetServer, ServesOverLoopback) {
  Loopback L;
  L.start(RtcgOptions{});
  if (!L.Server)
    return;
  NetClient C = L.client();
  ASSERT_TRUE(C.connected());

  Result<uint8_t> V = C.hello();
  ASSERT_TRUE(V.ok()) << V.error().message();
  EXPECT_EQ(*V, ProtocolVersion);

  Result<RtcgResponse> R = C.call(0, powerNetReq(10, 2));
  ASSERT_TRUE(R.ok()) << R.error().message();
  ASSERT_TRUE(R->Ok) << R->ErrorText;
  EXPECT_EQ(R->Value, "1024");
  EXPECT_FALSE(R->CacheHit);

  // Same key again: served from the shared cache, and the hit flag
  // travels back in the frame header.
  Result<RtcgResponse> R2 = C.call(0, powerNetReq(10, 3));
  ASSERT_TRUE(R2.ok() && R2->Ok);
  EXPECT_EQ(R2->Value, "59049");
  EXPECT_TRUE(R2->CacheHit);
}

TEST(NetServer, ParityWithInProcessServiceMixedTenants) {
  // The wire adds transport, not semantics: N concurrent connections
  // with mixed tenants must get answers bit-identical to the in-process
  // service — for successes, traps, parse errors, and classified
  // service errors alike.
  RtcgOptions O;
  O.Threads = 4;
  O.Limits.Fuel = 200000; // deep recursion below traps OutOfFuel
  auto MkOpts = [&] {
    RtcgOptions C = O;
    Result<TenantTable> T =
        TenantTable::parse("1:fuel=500;2:fuel=200000", O.Limits);
    EXPECT_TRUE(T.ok());
    if (T.ok())
      C.Tenants = std::make_shared<const TenantTable>(std::move(*T));
    return C;
  };

  struct Case {
    uint32_t Tenant;
    NetRequest Req;
  };
  std::vector<Case> Cases;
  for (int64_t N = 1; N <= 6; ++N)
    for (uint32_t Ten : {0u, 1u, 2u})
      Cases.push_back({Ten, powerNetReq(N * 8, 2)}); // tenant 1: traps
  {
    NetRequest Bad = powerNetReq(3, 2);
    Bad.RunArgs = {"("}; // unreadable datum: per-request parse error
    Cases.push_back({0, Bad});
    NetRequest BadDiv = powerNetReq(3, 2);
    BadDiv.Division = "XYZ"; // rejected by the generating extension
    Cases.push_back({2, BadDiv});
  }

  // Oracle: the same requests through the in-process submit path.
  std::vector<RtcgResponse> Want;
  {
    RtcgService Oracle(MkOpts());
    std::vector<RtcgRequest> Reqs;
    for (const Case &C : Cases) {
      RtcgRequest R = powerTemplate();
      if (!C.Req.Division.empty())
        R.Division = C.Req.Division;
      R.SpecArgs = C.Req.SpecArgs;
      R.RunArgs = C.Req.RunArgs;
      R.Tenant = C.Tenant;
      Reqs.push_back(std::move(R));
    }
    Want = Oracle.serveAll(std::move(Reqs));
  }

  Loopback L;
  L.start(MkOpts());
  if (!L.Server)
    return;

  // Every case on its own connection, several connections at a time.
  std::vector<RtcgResponse> Got(Cases.size());
  std::atomic<size_t> Next{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T != 8; ++T)
    Clients.emplace_back([&] {
      for (size_t I = Next.fetch_add(1); I < Cases.size();
           I = Next.fetch_add(1)) {
        Result<NetClient> C = NetClient::connect("127.0.0.1",
                                                 L.Server->port());
        ASSERT_TRUE(C.ok()) << C.error().message();
        Result<RtcgResponse> R = C->call(Cases[I].Tenant, Cases[I].Req);
        ASSERT_TRUE(R.ok()) << R.error().message();
        Got[I] = std::move(*R);
      }
    });
  for (std::thread &T : Clients)
    T.join();

  for (size_t I = 0; I != Cases.size(); ++I) {
    EXPECT_EQ(Got[I].Ok, Want[I].Ok) << "case " << I;
    EXPECT_EQ(Got[I].Value, Want[I].Value) << "case " << I;
    EXPECT_EQ(Got[I].ErrorText, Want[I].ErrorText) << "case " << I;
    EXPECT_EQ(Got[I].TrapCode, Want[I].TrapCode) << "case " << I;
    EXPECT_EQ(Got[I].ServiceCode, Want[I].ServiceCode) << "case " << I;
    EXPECT_EQ(Got[I].StoreCode, Want[I].StoreCode) << "case " << I;
  }
}

TEST(NetServer, PipelinedInterleavedRequestsOneConnection) {
  RtcgOptions O;
  O.Threads = 4; // several workers: completions genuinely interleave
  Loopback L;
  L.start(O);
  if (!L.Server)
    return;
  NetClient C = L.client();
  ASSERT_TRUE(C.connected());

  // Fire everything before reading anything; correlate by request id.
  constexpr int Count = 64;
  std::vector<uint64_t> Ids;
  for (int I = 0; I != Count; ++I) {
    Result<uint64_t> Id = C.send(0, powerNetReq(I % 8 + 1, 2));
    ASSERT_TRUE(Id.ok()) << Id.error().message();
    Ids.push_back(*Id);
  }
  // Collect in reverse order to force the client's stash through its
  // out-of-order replay path as well.
  for (int I = Count - 1; I >= 0; --I) {
    Result<RtcgResponse> R = C.receive(Ids[static_cast<size_t>(I)]);
    ASSERT_TRUE(R.ok()) << R.error().message();
    ASSERT_TRUE(R->Ok) << R->ErrorText;
    EXPECT_EQ(R->Value, std::to_string(ipow(2, I % 8 + 1)));
  }
}

TEST(NetServer, OverloadedShedIsClassified) {
  RtcgOptions O;
  O.Threads = 1;
  O.Limits.Fuel = 40000000; // slow requests stay in flight a while
  NetServerOptions NO;
  NO.QueueDepth = 2;
  Loopback L;
  L.start(O, NO);
  if (!L.Server)
    return;
  NetClient C = L.client();
  ASSERT_TRUE(C.connected());

  // A fully-dynamic division keeps the work at *run* time (a static n
  // would unroll at generation time instead): each request recurses
  // 200000 deep on the one worker, so the queue genuinely backs up.
  constexpr int Count = 24;
  std::vector<uint64_t> Ids;
  for (int I = 0; I != Count; ++I) {
    NetRequest Slow;
    Slow.Division = "DD";
    Slow.SpecArgs = {"_", "_"};
    Slow.RunArgs = {"1", std::to_string(200000 + I)};
    Result<uint64_t> Id = C.send(0, Slow);
    ASSERT_TRUE(Id.ok());
    Ids.push_back(*Id);
  }
  int ShedSeen = 0, Served = 0;
  for (uint64_t Id : Ids) {
    Result<RtcgResponse> R = C.receive(Id);
    ASSERT_TRUE(R.ok()) << R.error().message();
    if (!R->Ok && R->ServiceCode) {
      Error E(R->ErrorText);
      E.setCode(R->ServiceCode);
      EXPECT_EQ(serviceErrorOf(E), ServiceError::Overloaded);
      ++ShedSeen;
    } else {
      ASSERT_TRUE(R->Ok) << R->ErrorText;
      EXPECT_EQ(R->Value, "1"); // 1^N
      ++Served;
    }
  }
  // With depth 2 and 24 pipelined slow requests, some must shed and the
  // admitted ones must still be answered correctly — and no response was
  // lost or mangled on the shared connection (every receive() above
  // found its id).
  EXPECT_GT(ShedSeen, 0);
  EXPECT_GT(Served, 0);
  EXPECT_EQ(ShedSeen + Served, Count);
}

TEST(NetServer, TenantFuelQuotaIsolation) {
  // Same request, different tenants: the quota'd tenant traps on fuel,
  // the generous one succeeds — on the same worker pool.
  RtcgOptions O;
  O.Threads = 2;
  Result<TenantTable> T = TenantTable::parse("1:fuel=300;2:fuel=0", {});
  ASSERT_TRUE(T.ok()) << T.error().message();
  O.Tenants = std::make_shared<const TenantTable>(std::move(*T));
  Loopback L;
  L.start(O);
  if (!L.Server)
    return;
  NetClient C = L.client();

  Result<RtcgResponse> Poor = C.call(1, powerNetReq(5000, 1));
  Result<RtcgResponse> Rich = C.call(2, powerNetReq(5000, 1));
  ASSERT_TRUE(Poor.ok() && Rich.ok());
  EXPECT_FALSE(Poor->Ok);
  EXPECT_NE(Poor->TrapCode, 0) << Poor->ErrorText;
  ASSERT_TRUE(Rich->Ok) << Rich->ErrorText;
  EXPECT_EQ(Rich->Value, "1");

  // And the trap did not poison the worker: the quota'd tenant can still
  // run within its means.
  Result<RtcgResponse> Small = C.call(1, powerNetReq(3, 2));
  ASSERT_TRUE(Small.ok());
  ASSERT_TRUE(Small->Ok) << Small->ErrorText;
  EXPECT_EQ(Small->Value, "8");
}

TEST(NetServer, TenantCachePartitionsAreConfined) {
  // Tenants never share entries (tenant-mixed keys), and a tenant's
  // eviction pressure stays inside its own partition.
  RtcgOptions O;
  O.Threads = 1;
  Result<TenantTable> T = TenantTable::parse("1:cache=4096;2:cache=1048576",
                                             {});
  ASSERT_TRUE(T.ok());
  O.Tenants = std::make_shared<const TenantTable>(std::move(*T));
  Loopback L;
  L.start(O);
  if (!L.Server)
    return;
  NetClient C = L.client();

  // Tenant 2 caches one specialization...
  ASSERT_TRUE(C.call(2, powerNetReq(7, 2)).ok());
  // ...then tenant 1 churns through many distinct keys, far past its own
  // 4 KiB budget.
  for (int64_t N = 1; N <= 40; ++N)
    ASSERT_TRUE(C.call(1, powerNetReq(N, 2)).ok());

  CacheStats CS = L.Service->cacheStats();
  ASSERT_TRUE(CS.Tenants.count(1));
  ASSERT_TRUE(CS.Tenants.count(2));
  EXPECT_GT(CS.Tenants.at(1).Evictions, 0u) << "churn must evict";
  EXPECT_LE(CS.Tenants.at(1).Bytes, 4096u) << "budget must bind";
  EXPECT_EQ(CS.Tenants.at(2).Evictions, 0u)
      << "tenant 1's churn evicted tenant 2's entry";

  // Tenant 2's entry survived the neighbor's churn: still a hit.
  Result<RtcgResponse> R = C.call(2, powerNetReq(7, 3));
  ASSERT_TRUE(R.ok() && R->Ok);
  EXPECT_TRUE(R->CacheHit);
}

TEST(NetServer, StrictTableRejectsUnknownTenant) {
  RtcgOptions O;
  Result<TenantTable> T = TenantTable::parse("1:fuel=0;strict", {});
  ASSERT_TRUE(T.ok());
  ASSERT_TRUE(T->strict());
  O.Tenants = std::make_shared<const TenantTable>(std::move(*T));
  Loopback L;
  L.start(O);
  if (!L.Server)
    return;
  NetClient C = L.client();

  Result<RtcgResponse> Known = C.call(1, powerNetReq(4, 2));
  ASSERT_TRUE(Known.ok());
  ASSERT_TRUE(Known->Ok) << Known->ErrorText;

  Result<RtcgResponse> Unknown = C.call(77, powerNetReq(4, 2));
  ASSERT_TRUE(Unknown.ok());
  EXPECT_FALSE(Unknown->Ok);
  Error E(Unknown->ErrorText);
  E.setCode(Unknown->ServiceCode);
  EXPECT_EQ(serviceErrorOf(E), ServiceError::UnknownTenant);
}

TEST(NetServer, VersionSkewRejectedClassified) {
  Loopback L;
  L.start(RtcgOptions{});
  if (!L.Server)
    return;

  {
    // Hello negotiation with no common version.
    NetClient C = L.client();
    Result<uint8_t> V = C.hello(/*Min=*/7, /*Max=*/9);
    ASSERT_FALSE(V.ok());
    EXPECT_EQ(serviceErrorOf(V.error()), ServiceError::BadVersion);
  }
  {
    // A request frame stamped with a future version: classified
    // rejection, then the server hangs up.
    NetClient C = L.client();
    std::vector<uint8_t> Bytes = encodeRequest(0, 5, powerNetReq(3, 2));
    Bytes[4] = 9; // version byte
    ASSERT_TRUE(C.sendRaw(Bytes.data(), Bytes.size()).ok());
    Result<Frame> F = C.receiveFrame();
    ASSERT_TRUE(F.ok()) << F.error().message();
    ASSERT_EQ(F->Header.Type, FrameType::ProtoError);
    Result<NetResponse> E = decodeProtoErrorPayload(F->Payload);
    ASSERT_TRUE(E.ok());
    EXPECT_EQ(E->Code, static_cast<uint32_t>(ServiceErrorCodeBase) +
                           static_cast<uint32_t>(ServiceError::BadVersion));
    Result<Frame> Closed = C.receiveFrame();
    EXPECT_FALSE(Closed.ok()); // connection closed after the rejection
  }
}

TEST(NetServer, GarbageStreamClosedNewConnectionFine) {
  Loopback L;
  L.start(RtcgOptions{});
  if (!L.Server)
    return;
  {
    NetClient C = L.client();
    const char *Garbage = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(C.sendRaw(reinterpret_cast<const uint8_t *>(Garbage),
                          strlen(Garbage))
                    .ok());
    Result<Frame> F = C.receiveFrame();
    ASSERT_TRUE(F.ok());
    EXPECT_EQ(F->Header.Type, FrameType::ProtoError);
    Result<NetResponse> E = decodeProtoErrorPayload(F->Payload);
    ASSERT_TRUE(E.ok());
    EXPECT_EQ(E->Code, static_cast<uint32_t>(ServiceErrorCodeBase) +
                           static_cast<uint32_t>(ServiceError::BadFrame));
    EXPECT_FALSE(C.receiveFrame().ok()); // poisoned stream: closed
  }
  // The poisoned connection took nothing down with it.
  NetClient C2 = L.client();
  Result<RtcgResponse> R = C2.call(0, powerNetReq(5, 2));
  ASSERT_TRUE(R.ok() && R->Ok);
  EXPECT_EQ(R->Value, "32");
}

TEST(NetServer, MalformedPayloadFailsOnlyThatRequest) {
  Loopback L;
  L.start(RtcgOptions{});
  if (!L.Server)
    return;
  NetClient C = L.client();

  // A well-framed Request whose payload lies about an argument length.
  std::vector<uint8_t> Bytes = encodeRequest(0, 31, powerNetReq(3, 2));
  Bytes[FrameHeaderBytes + 2 + 2] = 0xFF; // first spec-arg length low byte
  Bytes[FrameHeaderBytes + 2 + 3] = 0xFF;
  ASSERT_TRUE(C.sendRaw(Bytes.data(), Bytes.size()).ok());
  Result<RtcgResponse> Bad = C.receive(31);
  ASSERT_TRUE(Bad.ok()) << Bad.error().message();
  EXPECT_FALSE(Bad->Ok);
  {
    Error E(Bad->ErrorText);
    E.setCode(Bad->ServiceCode);
    EXPECT_EQ(serviceErrorOf(E), ServiceError::BadFrame);
  }

  // The connection is still synchronized: the next request serves.
  Result<RtcgResponse> Good = C.call(0, powerNetReq(4, 3));
  ASSERT_TRUE(Good.ok() && Good->Ok);
  EXPECT_EQ(Good->Value, "81");
}

TEST(NetServer, BackpressurePausesAndResumes) {
  RtcgOptions O;
  O.Threads = 2;
  NetServerOptions NO;
  NO.WriteHighWater = 16 * 1024; // tiny: force the pause
  NO.SndBufBytes = 16 * 1024;    // no kernel ballooning past the mark
  RtcgRequest Template;
  Template.ProgramText = RepSrc;
  Template.Entry = "rep";
  Template.Division = "S";
  Loopback L;
  L.start(O, NO, Template);
  if (!L.Server)
    return;
  // Clamp the client's receive window (pre-connect) so kernel buffering
  // cannot absorb the whole response volume before the server's
  // user-space buffer crosses the mark.
  NetClient C = L.client(/*RcvBufBytes=*/8 * 1024);
  ASSERT_TRUE(C.connected());

  // Each response is a ~4000-element list (~8 KB of text). Pipeline many
  // without reading: the kernel buffers fill, the server's user-space
  // buffer crosses the high-water mark, and reading must pause...
  constexpr int Count = 400;
  NetRequest R;
  R.SpecArgs = {"2000"};
  std::vector<uint64_t> Ids;
  for (int I = 0; I != Count; ++I) {
    Result<uint64_t> Id = C.send(0, R);
    ASSERT_TRUE(Id.ok());
    Ids.push_back(*Id);
  }
  // Give the workers time to produce responses while nobody reads: the
  // kernel buffers (clamped above) fill first, then the server's
  // user-space buffer crosses the high-water mark and reading pauses.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // ...and every byte must still arrive, in frame-exact shape, once the
  // client drains (resume path).
  std::string Want = "(7";
  for (int I = 1; I != 2000; ++I)
    Want += " 7";
  Want += ")";
  for (uint64_t Id : Ids) {
    Result<RtcgResponse> Resp = C.receive(Id);
    ASSERT_TRUE(Resp.ok()) << Resp.error().message();
    if (!Resp->Ok && Resp->ServiceCode)
      continue; // shed under default queue depth: classified, acceptable
    ASSERT_TRUE(Resp->Ok) << Resp->ErrorText;
    EXPECT_EQ(Resp->Value, Want);
  }

  L.stop(); // loop done: stats are safe to read
  EXPECT_GE(L.Server->stats().ReadPauses, 1u);
  EXPECT_EQ(L.Server->stats().BadFrames, 0u) << "protocol desync";
}

} // namespace
