//===- tests/FrontendTest.cpp - Front-end pass unit tests ------------------===//

#include "TestUtil.h"

#include "frontend/Alpha.h"
#include "frontend/AssignElim.h"
#include "frontend/FreeVars.h"
#include "frontend/Parse.h"
#include "support/Casting.h"
#include "syntax/AnfCheck.h"

#include <unordered_set>

using namespace pecomp;
using namespace pecomp::test;

namespace {

// -- Parsing and desugaring ---------------------------------------------------

class ParseTest : public ::testing::Test {
protected:
  const Expr *parseOne(std::string_view Text) {
    Result<const Datum *> D = readDatum(Text, W.Datums);
    EXPECT_TRUE(D.ok());
    Result<const Expr *> E = parseExpr(*D, W.Exprs);
    EXPECT_TRUE(E.ok()) << (E.ok() ? "" : E.error().render());
    return E.ok() ? *E : nullptr;
  }

  Error parseError(std::string_view Text) {
    Result<const Datum *> D = readDatum(Text, W.Datums);
    EXPECT_TRUE(D.ok());
    Result<const Expr *> E = parseExpr(*D, W.Exprs);
    EXPECT_FALSE(E.ok()) << "expected a parse error for: " << Text;
    return E.ok() ? Error("") : E.error();
  }

  World W;
};

TEST_F(ParseTest, SelfEvaluatingLiterals) {
  EXPECT_TRUE(isa<ConstExpr>(parseOne("42")));
  EXPECT_TRUE(isa<ConstExpr>(parseOne("#t")));
  EXPECT_TRUE(isa<ConstExpr>(parseOne("\"s\"")));
  EXPECT_TRUE(isa<ConstExpr>(parseOne("#\\c")));
  EXPECT_TRUE(isa<ConstExpr>(parseOne("'(1 2)")));
}

TEST_F(ParseTest, PrimsInOperatorPositionBecomePrimApps) {
  const auto *P = cast<PrimAppExpr>(parseOne("(+ 1 2)"));
  EXPECT_EQ(P->op(), PrimOp::Add);
  EXPECT_EQ(P->args().size(), 2u);
}

TEST_F(ParseTest, NAryArithmeticFoldsToBinary) {
  // (+ 1 2 3 4) => (+ (+ (+ 1 2) 3) 4)
  const auto *P = cast<PrimAppExpr>(parseOne("(+ 1 2 3 4)"));
  EXPECT_EQ(P->op(), PrimOp::Add);
  EXPECT_TRUE(isa<PrimAppExpr>(P->args()[0]));
}

TEST_F(ParseTest, UnaryMinusBecomesSubtractionFromZero) {
  const auto *P = cast<PrimAppExpr>(parseOne("(- 5)"));
  EXPECT_EQ(P->op(), PrimOp::Sub);
  EXPECT_EQ(cast<FixnumDatum>(cast<ConstExpr>(P->args()[0])->value())->value(),
            0);
}

TEST_F(ParseTest, FirstClassPrimReferenceEtaExpands) {
  const auto *L = cast<LambdaExpr>(parseOne("car"));
  EXPECT_EQ(L->params().size(), 1u);
  EXPECT_TRUE(isa<PrimAppExpr>(L->body()));
}

TEST_F(ParseTest, ShadowedPrimNameIsAVariable) {
  // Inside (lambda (car) (car 1)), car is an ordinary variable.
  const auto *L = cast<LambdaExpr>(parseOne("(lambda (car) (car 1))"));
  EXPECT_TRUE(isa<AppExpr>(L->body()));
}

TEST_F(ParseTest, SingleLetIsCoreLet) {
  EXPECT_TRUE(isa<LetExpr>(parseOne("(let ((x 1)) x)")));
  EXPECT_TRUE(isa<LetExpr>(parseOne("(let (x 1) x)"))); // core syntax
}

TEST_F(ParseTest, MultiBindingLetBecomesLambdaApplication) {
  const auto *App = cast<AppExpr>(parseOne("(let ((x 1) (y 2)) (+ x y))"));
  EXPECT_TRUE(isa<LambdaExpr>(App->callee()));
  EXPECT_EQ(App->args().size(), 2u);
}

TEST_F(ParseTest, LetStarNests) {
  const auto *Outer = cast<LetExpr>(parseOne("(let* ((x 1) (y x)) y)"));
  EXPECT_TRUE(isa<LetExpr>(Outer->body()));
}

TEST_F(ParseTest, BeginSequencesThroughLets) {
  const auto *L = cast<LetExpr>(parseOne("(begin 1 2 3)"));
  EXPECT_TRUE(isa<ConstExpr>(L->init()));
}

TEST_F(ParseTest, CondBecomesNestedIfs) {
  const auto *I = cast<IfExpr>(
      parseOne("(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))"));
  EXPECT_TRUE(isa<IfExpr>(I->elseBranch()));
}

TEST_F(ParseTest, CondWithoutElseFallsThroughToError) {
  const auto *I = cast<IfExpr>(parseOne("(cond ((= 1 2) 'a))"));
  EXPECT_TRUE(isa<PrimAppExpr>(I->elseBranch()));
  EXPECT_EQ(cast<PrimAppExpr>(I->elseBranch())->op(), PrimOp::Error);
}

TEST_F(ParseTest, AndOrExpand) {
  EXPECT_TRUE(isa<IfExpr>(parseOne("(and 1 2)")));
  EXPECT_TRUE(isa<LetExpr>(parseOne("(or 1 2)"))); // temp for the head
  EXPECT_TRUE(isa<ConstExpr>(parseOne("(and)")));
  EXPECT_TRUE(isa<ConstExpr>(parseOne("(or)")));
}

TEST_F(ParseTest, ListBuildsConses) {
  const auto *P = cast<PrimAppExpr>(parseOne("(list 1 2)"));
  EXPECT_EQ(P->op(), PrimOp::Cons);
}

TEST_F(ParseTest, SetBecomesSetExpr) {
  const auto *L = cast<LambdaExpr>(parseOne("(lambda (x) (set! x 1))"));
  EXPECT_TRUE(isa<SetExpr>(L->body()));
}

TEST_F(ParseTest, RejectsKeywordAbuse) {
  parseError("(lambda (if) if)");
  parseError("(let ((lambda 1)) lambda)");
  parseError("if");
  parseError("(quote)");
  parseError("(if 1 2)");
  parseError("()");
}

TEST_F(ParseTest, RejectsArityErrorsOnPrims) {
  parseError("(car 1 2)");
  parseError("(cons 1)");
  parseError("(< 1 2 3)"); // comparisons are strictly binary
}

TEST_F(ParseTest, RejectsDuplicateParameters) {
  parseError("(lambda (x x) x)");
}

TEST(ProgramParseTest, DuplicateDefinitionRejected) {
  World W;
  Result<Program> P = W.parse("(define (f) 1)(define (f) 2)");
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().message().find("duplicate"), std::string::npos);
}

TEST(ProgramParseTest, CannotRedefinePrimitive) {
  World W;
  Result<Program> P = W.parse("(define (car x) x)");
  ASSERT_FALSE(P.ok());
}

TEST(ProgramParseTest, ForwardReferencesResolve) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f n) (g n))(define (g n) (+ n 1))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "f", {W.num(1)}));
  expectValueEq(R, W.num(2));
}

TEST(ProgramParseTest, ValueDefinitionsMustBeLambdas) {
  World W;
  EXPECT_FALSE(W.parse("(define x 42)").ok());
  EXPECT_TRUE(W.parse("(define f (lambda (x) x))").ok());
}

// -- Alpha renaming --------------------------------------------------------------

void collectBinders(const Expr *E, std::vector<Symbol> &Out) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    for (Symbol P : L->params())
      Out.push_back(P);
    collectBinders(L->body(), Out);
    return;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    Out.push_back(L->name());
    collectBinders(L->init(), Out);
    collectBinders(L->body(), Out);
    return;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    collectBinders(I->test(), Out);
    collectBinders(I->thenBranch(), Out);
    collectBinders(I->elseBranch(), Out);
    return;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    collectBinders(A->callee(), Out);
    for (const Expr *Arg : A->args())
      collectBinders(Arg, Out);
    return;
  }
  case Expr::Kind::PrimApp:
    for (const Expr *Arg : cast<PrimAppExpr>(E)->args())
      collectBinders(Arg, Out);
    return;
  case Expr::Kind::Set:
    collectBinders(cast<SetExpr>(E)->value(), Out);
    return;
  }
}

TEST(AlphaTest, AllBindersUniqueAfterRenaming) {
  World W;
  PECOMP_UNWRAP(
      P, W.parse("(define (f x) (let ((x (+ x 1))) (lambda (x) "
                 "(let ((y x)) (lambda (y) (+ x y))))))"
                 "(define (g x) (f x))"));
  std::vector<Symbol> Binders;
  for (const Definition &D : P.Defs)
    collectBinders(D.Fn, Binders);
  std::unordered_set<Symbol> Unique(Binders.begin(), Binders.end());
  EXPECT_EQ(Unique.size(), Binders.size());
}

TEST(AlphaTest, SemanticsPreserved) {
  World W;
  // Heavy shadowing; all three engines agree (they all run post-alpha).
  PECOMP_UNWRAP(P, W.parse("(define (f x) (let ((x (* x 2)))"
                           " (let ((x (+ x 1))) x)))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "f", {W.num(5)}));
  expectValueEq(R, W.num(11));
}

TEST(AlphaTest, GlobalNamesAreStable) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (f x))"));
  EXPECT_EQ(P.Defs[0].Name.str(), "f");
  const auto *App = cast<AppExpr>(P.Defs[0].Fn->body());
  EXPECT_EQ(cast<VarExpr>(App->callee())->name().str(), "f");
}

// -- Assignment elimination ---------------------------------------------------------

TEST(AssignElimTest, OutputIsAssignmentFree) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (begin (set! x (+ x 1)) x))"));
  struct {
    bool HasSet = false;
    void walk(const Expr *E) {
      if (isa<SetExpr>(E))
        HasSet = true;
      switch (E->kind()) {
      case Expr::Kind::Lambda:
        walk(cast<LambdaExpr>(E)->body());
        break;
      case Expr::Kind::Let:
        walk(cast<LetExpr>(E)->init());
        walk(cast<LetExpr>(E)->body());
        break;
      default:
        break;
      }
    }
  } Checker;
  Checker.walk(P.Defs[0].Fn);
  EXPECT_FALSE(Checker.HasSet);
}

TEST(AssignElimTest, MutatedParameterBehaviour) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (begin (set! x (+ x 10)) x))"));
  PECOMP_UNWRAP(R, W.runStock(P, "f", {W.num(5)}));
  expectValueEq(R, W.num(15));
}

TEST(AssignElimTest, ClosuresShareMutableState) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f)"
      "  (let ((n 0))"
      "    (let ((inc (lambda () (set! n (+ n 1))))"
      "          (get (lambda () n)))"
      "      (begin (inc) (inc) (inc) (get)))))"));
  PECOMP_UNWRAP(R, W.runAnf(P, "f", {}));
  expectValueEq(R, W.num(3));
  PECOMP_UNWRAP(R2, W.evalCall(P, "f", {}));
  expectValueEq(R2, W.num(3));
}

TEST(AssignElimTest, SetOfGlobalIsRejected) {
  World W;
  Result<Program> P = W.parse("(define (f) (set! f 1))");
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().message().find("unbound or global"), std::string::npos);
}

TEST(AssignElimTest, UnassignedVariablesAreNotBoxed) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x y) (begin (set! x 1) (+ x y)))"));
  // y is never assigned: no box-ref should guard it.
  std::string Printed = P.Defs[0].Fn->body()->print();
  EXPECT_NE(Printed.find("box-ref"), std::string::npos);
  // Count the box-refs: only x's single read.
  size_t Count = 0;
  for (size_t At = Printed.find("box-ref"); At != std::string::npos;
       At = Printed.find("box-ref", At + 1))
    ++Count;
  EXPECT_EQ(Count, 1u);
}

// -- Free variables -------------------------------------------------------------------

TEST(FreeVarsTest, FirstOccurrenceOrder) {
  World W;
  Result<const Datum *> D =
      readDatum("(lambda (a) (+ (+ b a) (+ c (+ b d))))", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  std::vector<Symbol> Free = freeVars(*E);
  ASSERT_EQ(Free.size(), 3u);
  EXPECT_EQ(Free[0].str(), "b");
  EXPECT_EQ(Free[1].str(), "c");
  EXPECT_EQ(Free[2].str(), "d");
}

TEST(FreeVarsTest, BindersRemoveOccurrences) {
  World W;
  Result<const Datum *> D =
      readDatum("(let ((x y)) (lambda (z) (+ x (+ y z))))", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  std::vector<Symbol> Free = freeVars(*E);
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_EQ(Free[0].str(), "y");
}

TEST(FreeVarsTest, ExcludeSetFiltersGlobals) {
  World W;
  Result<const Datum *> D = readDatum("(f x)", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  std::unordered_set<Symbol> Globals = {Symbol::intern("f")};
  std::vector<Symbol> Free = freeVars(*E, Globals);
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_EQ(Free[0].str(), "x");
}

// -- ANF conversion -----------------------------------------------------------------

struct AnfCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  std::vector<int64_t> Args;
};

class AnfConvertTest : public ::testing::TestWithParam<AnfCase> {};

TEST_P(AnfConvertTest, OutputIsAnfAndSemanticsPreserved) {
  const AnfCase &C = GetParam();
  World W;
  PECOMP_UNWRAP(P, W.parse(C.Source));
  Program Anf = anfConvert(P, W.Exprs);
  EXPECT_FALSE(checkAnf(Anf)) << *checkAnf(Anf);

  std::vector<vm::Value> Args;
  for (int64_t A : C.Args)
    Args.push_back(W.num(A));
  PECOMP_UNWRAP(Before, W.evalCall(P, C.Fn, Args));
  PECOMP_UNWRAP(After, W.evalCall(Anf, C.Fn, Args));
  expectValueEq(Before, After);
}

INSTANTIATE_TEST_SUITE_P(
    Frontend, AnfConvertTest,
    ::testing::Values(
        AnfCase{"nested_calls",
                "(define (f x) (+ (* x (+ x 1)) (* x (- x 1))))", "f", {7}},
        AnfCase{"if_in_argument",
                "(define (f x) (+ 1 (if (zero? x) 10 20)))", "f", {0}},
        AnfCase{"if_in_let_rhs",
                "(define (f x) (let ((y (if (> x 0) x (- 0 x)))) (* y 2)))",
                "f", {-4}},
        AnfCase{"nested_ifs_nontail",
                "(define (f x) (* (if (> x 5) (if (> x 8) 1 2) 3) 10))", "f",
                {9}},
        AnfCase{"let_chain",
                "(define (f x) (let ((a (+ x 1))) (let ((b (+ a 1))) "
                "(let ((c (+ b 1))) c))))",
                "f", {0}},
        AnfCase{"lambda_in_if",
                "(define (f x) ((if (zero? x) (lambda (k) (+ k 1)) "
                "(lambda (k) (- k 1))) 10))",
                "f", {0}},
        AnfCase{"deep_nesting",
                "(define (f x) (+ (+ (+ (+ x 1) (+ x 2)) (+ (+ x 3) (+ x 4)))"
                " (+ x 5)))",
                "f", {1}}),
    [](const auto &Info) { return std::string(Info.param.Name); });

TEST(AnfConvertIdempotence, AnfInputIsStable) {
  // Converting twice gives a program that still checks and agrees.
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (+ (* x x) 1))"));
  Program A1 = anfConvert(P, W.Exprs);
  Program A2 = anfConvert(A1, W.Exprs);
  EXPECT_FALSE(checkAnf(A2));
  PECOMP_UNWRAP(R1, W.evalCall(A1, "f", {W.num(6)}));
  PECOMP_UNWRAP(R2, W.evalCall(A2, "f", {W.num(6)}));
  expectValueEq(R1, R2);
}

} // namespace
