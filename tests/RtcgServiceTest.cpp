//===- tests/RtcgServiceTest.cpp - Concurrent RTCG service ----------------===//
///
/// \file
/// The serving loop under test: correctness of single requests, parity of
/// concurrent batches against sequentially precomputed oracle results,
/// per-request fault isolation with machine reuse, and cache sharing
/// across workers. The hammer tests here are the ones the sanitizer
/// harness (scripts/sanitize-check.sh) must keep clean.
///
//===----------------------------------------------------------------------===//

#include "StoreTestUtil.h"
#include "TestUtil.h"

#include "pgg/DiskStore.h"
#include "pgg/RtcgService.h"

#include <set>

using namespace pecomp;
using namespace pecomp::test;

namespace {

const char *PowerSrc = R"((define (power x n)
  (if (= n 0) 1 (* x (power x (- n 1))))))";

pgg::RtcgRequest powerReq(int64_t N, int64_t X) {
  pgg::RtcgRequest R;
  R.ProgramText = PowerSrc;
  R.Entry = "power";
  R.Division = "DS";
  R.SpecArgs = {"_", std::to_string(N)};
  R.RunArgs = {std::to_string(X)};
  return R;
}

int64_t ipow(int64_t X, int64_t N) {
  int64_t R = 1;
  while (N--)
    R *= X;
  return R;
}

TEST(RtcgService, ServesSingleRequest) {
  pgg::RtcgOptions O;
  O.Threads = 1;
  pgg::RtcgService S(O);
  std::vector<pgg::RtcgResponse> Rs = S.serveAll({powerReq(5, 2)});
  ASSERT_EQ(Rs.size(), 1u);
  ASSERT_TRUE(Rs[0].Ok) << Rs[0].ErrorText;
  EXPECT_EQ(Rs[0].Value, "32");
  EXPECT_FALSE(Rs[0].CacheHit);
  EXPECT_EQ(S.cacheStats().Misses, 1u);
  EXPECT_EQ(S.cacheStats().Insertions, 1u);
}

TEST(RtcgService, RepeatKeyHitsCache) {
  pgg::RtcgOptions O;
  O.Threads = 1; // deterministic: second request must see the first's insert
  pgg::RtcgService S(O);
  std::vector<pgg::RtcgResponse> Rs =
      S.serveAll({powerReq(6, 2), powerReq(6, 3), powerReq(6, 10)});
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_EQ(Rs[0].Value, "64");
  EXPECT_EQ(Rs[1].Value, "729");
  EXPECT_EQ(Rs[2].Value, "1000000");
  EXPECT_FALSE(Rs[0].CacheHit);
  EXPECT_TRUE(Rs[1].CacheHit);
  EXPECT_TRUE(Rs[2].CacheHit);
  // A hit still reports the generation stats it amortizes.
  EXPECT_EQ(Rs[1].Gen.ResidualFunctions, Rs[0].Gen.ResidualFunctions);
  pgg::CacheStats CS = S.cacheStats();
  EXPECT_EQ(CS.Hits, 2u);
  EXPECT_EQ(CS.Misses, 1u);
}

TEST(RtcgService, ConcurrentHammerMatchesOracle) {
  // A few hundred requests over a handful of keys, served by 8 workers
  // against one shared cache; every response must equal the directly
  // computed value. Run under scripts/sanitize-check.sh this doubles as
  // the data-race / lifetime check for the whole cache + service stack.
  std::vector<pgg::RtcgRequest> Reqs;
  std::vector<std::string> Expected;
  for (int I = 0; I != 240; ++I) {
    int64_t N = 2 + I % 5;  // 5 distinct specializations
    int64_t X = 1 + I % 7;
    Reqs.push_back(powerReq(N, X));
    Expected.push_back(std::to_string(ipow(X, N)));
  }

  pgg::RtcgOptions O;
  O.Threads = 8;
  pgg::RtcgService S(O);
  std::vector<pgg::RtcgResponse> Rs = S.serveAll(std::move(Reqs));
  ASSERT_EQ(Rs.size(), Expected.size());
  for (size_t I = 0; I != Rs.size(); ++I) {
    ASSERT_TRUE(Rs[I].Ok) << "request " << I << ": " << Rs[I].ErrorText;
    EXPECT_EQ(Rs[I].Value, Expected[I]) << "request " << I;
  }
  pgg::CacheStats CS = S.cacheStats();
  // With 240 requests over 5 keys, the overwhelming majority hit; a few
  // initial races may generate the same key twice, never more than once
  // per worker.
  EXPECT_GE(CS.Hits, 240u - 5 * 8);
  EXPECT_LE(CS.Insertions, 5u * 8u);
  // Work was actually spread across workers (flaky only if the OS
  // serializes the whole pool, so assert weakly: more than one worker).
  std::set<size_t> WorkersSeen;
  for (const pgg::RtcgResponse &R : Rs)
    WorkersSeen.insert(R.Worker);
  EXPECT_GE(WorkersSeen.size(), 1u);
}

TEST(RtcgService, HammerWithEvictionStaysCorrect) {
  // A cache budget far below the working set forces constant eviction and
  // regeneration while 4 workers serve; responses must stay correct and
  // in-flight entries must survive their eviction (shared_ptr pinning).
  pgg::RtcgOptions O;
  O.Threads = 4;
  O.CacheBytes = 600; // roughly one or two power residuals
  O.CacheShards = 2;
  pgg::RtcgService S(O);

  std::vector<pgg::RtcgRequest> Reqs;
  std::vector<std::string> Expected;
  for (int I = 0; I != 160; ++I) {
    int64_t N = 2 + I % 8; // working set >> budget
    int64_t X = 2 + I % 3;
    Reqs.push_back(powerReq(N, X));
    Expected.push_back(std::to_string(ipow(X, N)));
  }
  std::vector<pgg::RtcgResponse> Rs = S.serveAll(std::move(Reqs));
  for (size_t I = 0; I != Rs.size(); ++I) {
    ASSERT_TRUE(Rs[I].Ok) << "request " << I << ": " << Rs[I].ErrorText;
    EXPECT_EQ(Rs[I].Value, Expected[I]) << "request " << I;
  }
  EXPECT_GE(S.cacheStats().Evictions, 1u);
}

TEST(RtcgService, FaultsAreIsolatedAndWorkersRecover) {
  // spin residualizes (the recursion is under a dynamic conditional) and
  // then diverges at *run* time on x < n, so the failure is a VM fuel
  // trap, not a specialization-time unfold abort.
  const char *LoopSrc = R"((define (spin x n) (if (< x n) (spin x n) 0))
(define (power x n)
  (if (= n 0) 1 (* x (power x (- n 1))))))";

  pgg::RtcgOptions O;
  O.Threads = 2;
  O.Limits.Fuel = 200'000; // the spin request must trap, not hang
  pgg::RtcgService S(O);

  pgg::RtcgRequest Spin;
  Spin.ProgramText = LoopSrc;
  Spin.Entry = "spin";
  Spin.Division = "DD";
  Spin.SpecArgs = {"_", "_"};
  Spin.RunArgs = {"1", "2"};

  pgg::RtcgRequest Good;
  Good.ProgramText = LoopSrc;
  Good.Entry = "power";
  Good.Division = "DS";
  Good.SpecArgs = {"_", "4"};
  Good.RunArgs = {"3"};

  pgg::RtcgRequest BadDatum = Good;
  BadDatum.RunArgs = {"(unclosed"};

  // Interleave failures with successes; the same two machines serve all
  // of them, so every success after a failure exercises trap recovery.
  std::vector<pgg::RtcgResponse> Rs =
      S.serveAll({Good, Spin, Good, BadDatum, Spin, Good});
  ASSERT_EQ(Rs.size(), 6u);
  EXPECT_TRUE(Rs[0].Ok);
  EXPECT_FALSE(Rs[1].Ok);
  EXPECT_EQ(static_cast<vm::TrapKind>(Rs[1].TrapCode),
            vm::TrapKind::FuelExhausted);
  EXPECT_TRUE(Rs[2].Ok);
  EXPECT_FALSE(Rs[3].Ok);
  EXPECT_FALSE(Rs[4].Ok);
  EXPECT_TRUE(Rs[5].Ok);
  for (size_t I : {0u, 2u, 5u})
    EXPECT_EQ(Rs[I].Value, "81") << "request " << I;
}

TEST(RtcgService, SubmitInterfaceAndDestructorDrain) {
  // submit() futures resolve individually; a service destroyed with the
  // queue already drained joins cleanly (shutdown path).
  pgg::RtcgOptions O;
  O.Threads = 2;
  pgg::RtcgService S(O);
  std::future<pgg::RtcgResponse> F1 = S.submit(powerReq(3, 2));
  std::future<pgg::RtcgResponse> F2 = S.submit(powerReq(3, 3));
  EXPECT_EQ(F1.get().Value, "8");
  EXPECT_EQ(F2.get().Value, "27");
}

TEST(RtcgService, WarmStartsFromPersistentStoreAcrossInstances) {
  // Two service lifetimes over one store directory: the second instance
  // has a cold memory cache but serves the first's specialization from
  // disk — the `pecompc serve --store` warm-start path.
  TempStoreDir Dir;
  {
    PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
    pgg::RtcgOptions O;
    O.Threads = 1;
    O.Store = St;
    pgg::RtcgService S(O);
    auto Rs = S.serveAll({powerReq(6, 2)});
    ASSERT_TRUE(Rs[0].Ok) << Rs[0].ErrorText;
    EXPECT_EQ(Rs[0].Value, "64");
    EXPECT_FALSE(Rs[0].CacheHit);
    EXPECT_EQ(S.cacheStats().DiskWrites, 1u);
  } // service and its memory cache destroyed; only the directory remains

  PECOMP_UNWRAP(St2, pgg::DiskStore::open(Dir.Path));
  pgg::RtcgOptions O2;
  O2.Threads = 1;
  O2.Store = St2;
  pgg::RtcgService S2(O2);
  auto Rs = S2.serveAll({powerReq(6, 2), powerReq(6, 3)});
  ASSERT_TRUE(Rs[0].Ok) << Rs[0].ErrorText;
  EXPECT_EQ(Rs[0].Value, "64");
  EXPECT_TRUE(Rs[0].CacheHit);
  EXPECT_TRUE(Rs[0].DiskHit); // served by the store, not regenerated
  EXPECT_EQ(Rs[0].StoreCode, 0);
  ASSERT_TRUE(Rs[1].Ok);
  EXPECT_EQ(Rs[1].Value, "729");
  EXPECT_TRUE(Rs[1].CacheHit);
  EXPECT_FALSE(Rs[1].DiskHit); // promoted: second hit is pure memory
  pgg::CacheStats CS = S2.cacheStats();
  EXPECT_TRUE(CS.HasDisk);
  EXPECT_EQ(CS.DiskHits, 1u);
}

TEST(RtcgService, CorruptStoreEntryDegradesToColdServeWithStoreCode) {
  // A corrupt store entry must cost only the warm start: the request
  // still succeeds via cold specialization, TrapCode stays clean, and
  // the store failure is classified on its own channel.
  TempStoreDir Dir;
  {
    PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
    pgg::RtcgOptions O;
    O.Threads = 1;
    O.Store = St;
    pgg::RtcgService S(O);
    ASSERT_TRUE(S.serveAll({powerReq(6, 2)})[0].Ok);
  }
  // Flip one payload byte in the single committed entry.
  for (auto &E : std::filesystem::directory_iterator(Dir.Path)) {
    if (E.path().extension() != ".ppc")
      continue;
    std::vector<uint8_t> Image = slurp(E.path().string());
    Image[Image.size() - 1] ^= 0x08;
    spit(E.path().string(), Image);
  }

  PECOMP_UNWRAP(St2, pgg::DiskStore::open(Dir.Path));
  pgg::RtcgOptions O2;
  O2.Threads = 1;
  O2.Store = St2;
  pgg::RtcgService S2(O2);
  auto Rs = S2.serveAll({powerReq(6, 2)});
  ASSERT_TRUE(Rs[0].Ok) << Rs[0].ErrorText; // cold fallback served it
  EXPECT_EQ(Rs[0].Value, "64");
  EXPECT_FALSE(Rs[0].DiskHit);
  EXPECT_EQ(Rs[0].TrapCode, 0); // not a specialization/runtime trap
  EXPECT_EQ(Rs[0].StoreCode,
            pgg::StoreErrorCodeBase +
                static_cast<int>(pgg::StoreError::BodyCorrupt));
  EXPECT_FALSE(Rs[0].StoreNote.empty());
  // The cold regeneration wrote through again: the store self-heals.
  EXPECT_GE(S2.cacheStats().DiskWrites, 1u);
}

} // namespace
