//===- tests/FuzzHarnessTest.cpp - Tests for the fuzzing subsystem --------===//
///
/// \file
/// The fuzzer is a trust anchor — a silent run is only meaningful if the
/// harness itself is known to work. These tests pin down each piece: the
/// coverage map's feature algebra, case serialization round-trips, the
/// six-tier differential on known programs (agreement where it must
/// agree, detection when a bug is planted), bounded convergence of the
/// delta-debugging reducer to a known minimal core, corpus deduplication,
/// and mutation validity.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Differential.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Mutate.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Reduce.h"
#include "support/CoverageMap.h"

#include <gtest/gtest.h>

using namespace pecomp;
using namespace pecomp::fuzz;

namespace {

const char *PowerSource =
    "(define (power base exp)\n"
    "  (if (zero? exp) 1 (* base (power base (- exp 1)))))\n";

FuzzCase powerCase() {
  FuzzCase C;
  C.Source = PowerSource;
  C.Entry = "power";
  C.Division = "DS";
  C.Args = {2, 5};
  return C;
}

// -- CoverageMap ----------------------------------------------------------

TEST(CoverageMap, FeatureEncodingSeparatesDomains) {
  using support::CoverageMap;
  EXPECT_NE(CoverageMap::feature(support::CovOpcode, 3),
            CoverageMap::feature(support::CovDigram, 3));
  EXPECT_NE(CoverageMap::feature(support::CovOpcode, 3),
            CoverageMap::feature(support::CovOpcode, 4));
}

TEST(CoverageMap, AddIsIdempotentPerFeature) {
  support::CoverageMap M;
  EXPECT_TRUE(M.add(support::CovOpcode, 1));
  EXPECT_FALSE(M.add(support::CovOpcode, 1));
  EXPECT_TRUE(M.add(support::CovDigram, 1));
  EXPECT_EQ(M.features(), 2u);
  EXPECT_EQ(M.probes(), 3u);
  M.clear();
  EXPECT_EQ(M.features(), 0u);
  EXPECT_TRUE(M.add(support::CovOpcode, 1));
}

TEST(CoverageMap, BucketsGradeCounters) {
  EXPECT_EQ(support::coverageBucket(0), 0u);
  EXPECT_EQ(support::coverageBucket(1), 1u);
  EXPECT_EQ(support::coverageBucket(2), 2u);
  EXPECT_EQ(support::coverageBucket(3), 2u);
  EXPECT_LT(support::coverageBucket(100), support::coverageBucket(100000));
}

// -- Case serialization ---------------------------------------------------

TEST(FuzzCase, SerializationRoundTrips) {
  FuzzCase C = powerCase();
  C.Perturb.Fuel = 37;
  C.Perturb.FailAtAllocation = 5;

  auto Back = FuzzCase::deserialize(C.serialize());
  ASSERT_TRUE(Back.ok()) << Back.error().render();
  EXPECT_EQ(Back->Source, C.Source);
  EXPECT_EQ(Back->Entry, C.Entry);
  EXPECT_EQ(Back->Division, C.Division);
  EXPECT_EQ(Back->Args, C.Args);
  EXPECT_TRUE(Back->Perturb == C.Perturb);
  EXPECT_EQ(Back->fingerprint(), C.fingerprint());
}

TEST(FuzzCase, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FuzzCase::deserialize("(define (f x) x)").ok());
  EXPECT_FALSE(FuzzCase::deserialize(";; pecomp-fuzz-case v1\n").ok());
  EXPECT_FALSE(
      FuzzCase::deserialize(";; pecomp-fuzz-case v1\n;; entry f\n").ok());
}

TEST(FuzzCase, FingerprintSeesEveryField) {
  FuzzCase A = powerCase();
  FuzzCase B = A;
  B.Args[0] = 3;
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  FuzzCase D = A;
  D.Division = "DD";
  EXPECT_NE(A.fingerprint(), D.fingerprint());
  FuzzCase P = A;
  P.Perturb.Fuel = 10;
  EXPECT_NE(A.fingerprint(), P.fingerprint());
}

// -- Differential executor ------------------------------------------------

TEST(Differential, AllTiersAgreeOnPower) {
  support::CoverageMap Cov;
  DiffOptions Opts;
  Opts.Coverage = &Cov;
  DiffResult R = runCase(powerCase(), Opts);
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  ASSERT_FALSE(R.Diverged) << R.Diverged->render();
  for (Tier T : {Tier::Oracle, Tier::Bytes, Tier::Decoded, Tier::Fused,
                 Tier::Native, Tier::Cached, Tier::Guarded}) {
    const TierOutcome &O = R.Tiers[static_cast<size_t>(T)];
    EXPECT_TRUE(O.Ran) << tierName(T);
    EXPECT_TRUE(O.Ok) << tierName(T) << ": " << O.Err;
  }
  EXPECT_EQ(R.Tiers[static_cast<size_t>(Tier::Bytes)].Value, "32");
  EXPECT_GT(R.EntryInsns, 0u);
  EXPECT_GT(Cov.features(), 0u);
  EXPECT_GT(R.NewCoverage, 0u);
}

TEST(Differential, PerturbedRunSkipsOracleButStaysConsistent) {
  FuzzCase C = powerCase();
  C.Perturb.Fuel = 3; // starves every VM tier mid-execution
  DiffResult R = runCase(C);
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  EXPECT_FALSE(R.Tiers[static_cast<size_t>(Tier::Oracle)].Ran);
  ASSERT_FALSE(R.Diverged) << R.Diverged->render();
  const TierOutcome &B = R.Tiers[static_cast<size_t>(Tier::Bytes)];
  EXPECT_FALSE(B.Ok);
  EXPECT_EQ(B.Kind, vm::TrapKind::FuelExhausted);
}

TEST(Differential, HeapFaultScheduleStaysConsistent) {
  FuzzCase C = powerCase();
  C.Perturb.FailAtAllocation = 2;
  DiffResult R = runCase(C);
  if (R.Skipped)
    GTEST_SKIP() << R.SkipReason;
  EXPECT_FALSE(R.Diverged) << R.Diverged->render();
}

TEST(Differential, GuardedMissLegMatchesBytesExactly) {
  // The guarded tier's recorded outcome is its deopt (miss) leg, which
  // must be bit-identical to the byte-loop reference — value AND
  // executed-instruction count, since the guard lives outside the
  // dispatch loops and costs no fuel.
  DiffResult R = runCase(powerCase());
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  ASSERT_FALSE(R.Diverged) << R.Diverged->render();
  const TierOutcome &B = R.Tiers[static_cast<size_t>(Tier::Bytes)];
  const TierOutcome &G = R.Tiers[static_cast<size_t>(Tier::Guarded)];
  ASSERT_TRUE(G.Ran);
  EXPECT_TRUE(G.Ok) << G.Err;
  EXPECT_EQ(G.Value, B.Value);
  EXPECT_EQ(G.Instructions, B.Instructions);
}

TEST(Differential, GuardedTierCanBeDisabled) {
  DiffOptions Opts;
  Opts.Guarded = false;
  DiffResult R = runCase(powerCase(), Opts);
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  EXPECT_FALSE(R.Diverged) << R.Diverged->render();
  EXPECT_FALSE(R.Tiers[static_cast<size_t>(Tier::Guarded)].Ran);
}

TEST(Differential, GuardedMissLegHoldsUnderFuelStarvation) {
  // Perturbations run the miss leg only (the hit leg's whole point is a
  // different instruction stream), and the deopt must trap exactly like
  // the direct call: same kind, same accounting.
  FuzzCase C = powerCase();
  C.Perturb.Fuel = 3;
  DiffResult R = runCase(C);
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  ASSERT_FALSE(R.Diverged) << R.Diverged->render();
  const TierOutcome &G = R.Tiers[static_cast<size_t>(Tier::Guarded)];
  ASSERT_TRUE(G.Ran);
  EXPECT_FALSE(G.Ok);
  EXPECT_EQ(G.Kind, vm::TrapKind::FuelExhausted);
}

TEST(Differential, InvalidCasesSkipNotDiverge) {
  FuzzCase C = powerCase();
  C.Entry = "nosuch";
  EXPECT_TRUE(runCase(C).Skipped);
  C = powerCase();
  C.Division = "D"; // arity mismatch
  EXPECT_TRUE(runCase(C).Skipped);
  C = powerCase();
  C.Source = "(define (power base exp";
  EXPECT_TRUE(runCase(C).Skipped);
}

TEST(Differential, CatchesInjectedBranchPolarityBug) {
  FuzzCase C;
  C.Source = "(define (f x) (if (< x 0) 1 2))\n";
  C.Entry = "f";
  C.Division = "D";
  C.Args = {5};
  DiffOptions Opts;
  Opts.Inject = InjectedBug::BranchPolarity;
  DiffResult R = runCase(C, Opts);
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  ASSERT_TRUE(R.Diverged);
  EXPECT_EQ(R.Diverged->B, Tier::Cached);
  // Sanity: without the injection the same case agrees.
  DiffResult Clean = runCase(C);
  EXPECT_FALSE(Clean.Diverged) << Clean.Diverged->render();
}

TEST(Differential, CatchesInjectedFuelOffByOne) {
  FuzzCase C = powerCase();
  C.Perturb.Fuel = 10; // both budgets exhaust; counts must differ
  DiffOptions Opts;
  Opts.Inject = InjectedBug::FuelOffByOne;
  DiffResult R = runCase(C, Opts);
  ASSERT_FALSE(R.Skipped) << R.SkipReason;
  ASSERT_TRUE(R.Diverged);
  EXPECT_EQ(R.Diverged->B, Tier::Cached);
}

// -- Robustness: pathological cases must abort cleanly, not wedge ----------

TEST(Differential, SpecCodeExplosionAbortsAsSkip) {
  // Shaken out by the first corpus run (seed 7, iteration 84): a DAG
  // program whose nested dynamic conditionals duplicate the specializer's
  // continuation into both arms across unfolded calls — exponential
  // residual growth with unfold depth, memo nesting, and function count
  // all tiny. Before SpecOptions::MaxSpecSteps this wedged the process at
  // tens of GB of residual code; it must now abort as a spec-time skip.
  FuzzCase C;
  C.Source =
      "(define (fn0 p0_0 p0_1 p0_2)\n"
      "  (remainder (if (< (if (>= p0_1 -2) p0_1 p0_1)\n"
      "                    ((lambda (a b) a) 1 p0_1))\n"
      "                 (if (>= p0_2 4) 2 -6)\n"
      "                 -3)\n"
      "             (quotient 1 p0_0)))\n"
      "(define (fn1 p1_0 p1_1 p1_2)\n"
      "  (if (< (let (v (let (w p1_1) p1_2)) (remainder 8 v))\n"
      "         (fn0 (fn0 -7 p1_2 p1_2) (- -8 -2) (fn0 10 1 -3)))\n"
      "      -2\n"
      "      ((lambda (a b) (let (v -7) 10)) (if (= -8 10) 2 3) p1_1)))\n"
      "(define (fn2 p2_0 p2_1 p2_2)\n"
      "  (fn0 (let (v (+ p2_0 1)) p2_1)\n"
      "       (fn1 p2_2 (fn1 6 p2_1 -2) (- p2_1 7))\n"
      "       (fn1 p2_0 7 (if (= 6 7) p2_1 6))))\n";
  C.Entry = "fn2";
  C.Division = "SDD";
  C.Args = {-7, 17, 11};
  DiffResult R = runCase(C);
  ASSERT_TRUE(R.Skipped);
  EXPECT_NE(R.SkipReason.find("step budget"), std::string::npos)
      << R.SkipReason;
}

TEST(Differential, DeepNonTailRecursionSkipsInsteadOfSmashingStack) {
  // The oracle evaluates non-tail calls on the host C++ stack; without
  // its depth governor a recursive mutant segfaulted the harness. Past
  // the cap the case is skipped — the cap is a harness artifact, not a
  // semantic limit, so it must not read as a divergence.
  FuzzCase C;
  C.Source = "(define (sum n) (if (< n 1) 0 (+ n (sum (- n 1)))))\n";
  C.Entry = "sum";
  C.Division = "D";
  C.Args = {100000};
  DiffResult R = runCase(C);
  ASSERT_TRUE(R.Skipped);
  EXPECT_NE(R.SkipReason.find("depth"), std::string::npos) << R.SkipReason;
}

TEST(Differential, ResidualJumpOverflowIsRecoverable) {
  // A residual body whose conditional must jump across more bytes than an
  // i16 offset can express. The source stays shallow (tail recursion, so
  // the oracle iterates and the front end barely nests); the *specializer*
  // manufactures the bulk by unfolding 750 fat iterations into each arm
  // of the dynamic conditional. The assembler used to abort() the
  // process; generateObject now reports it and the case skips.
  FuzzCase C;
  C.Source =
      "(define (go n acc)\n"
      "  (if (= n 0)\n"
      "      acc\n"
      "      (go (- n 1)\n"
      "          (- (* (+ acc 3) 5)\n"
      "             (+ (quotient acc 7)\n"
      "                (- (* acc 11) (remainder acc 13)))))))\n"
      "(define (big n d) (if (< d 0) (go n d) (go n (- 0 d))))\n";
  C.Entry = "big";
  C.Division = "SD";
  C.Args = {750, 4};
  DiffResult R = runCase(C);
  ASSERT_TRUE(R.Skipped);
  EXPECT_NE(R.SkipReason.find("jump range"), std::string::npos)
      << R.SkipReason;
}

TEST(Differential, DeeplyNestedSourceSkipsBeforeTheFrontEnd) {
  // 1500-deep nesting used to segfault the recursive-descent front end
  // when replaying an adversarial corpus file; the harness now rejects it
  // up front.
  std::string Body = "x";
  for (int I = 0; I != 1500; ++I)
    Body = "(+ " + Body + " 1)";
  FuzzCase C;
  C.Source = "(define (deep x) " + Body + ")\n";
  C.Entry = "deep";
  C.Division = "D";
  C.Args = {1};
  DiffResult R = runCase(C);
  ASSERT_TRUE(R.Skipped);
  EXPECT_NE(R.SkipReason.find("nesting"), std::string::npos) << R.SkipReason;
}

// -- Reducer --------------------------------------------------------------

TEST(Reducer, ConvergesToKnownMinimalCoreWithinBudget) {
  // Bloated divergent case: dead helper definitions, a fat arithmetic
  // wrapper around the one conditional the planted bug actually flips.
  FuzzCase C;
  C.Source =
      "(define (pad a) (+ (* a a) (- a 7)))\n"
      "(define (noise b c) (* (pad b) (+ c 3)))\n"
      "(define (f x) (+ (* 0 (noise x x)) (if (< x 0) 1 2)))\n";
  C.Entry = "f";
  C.Division = "D";
  C.Args = {5};
  DiffOptions Opts;
  Opts.Inject = InjectedBug::BranchPolarity;
  ASSERT_TRUE(runCase(C, Opts).Diverged);

  ReduceOptions ROpts;
  ROpts.MaxAttempts = 400;
  ReduceOutcome Out = reduceCase(C, Opts, ROpts);
  ASSERT_TRUE(Out.Diverged);
  EXPECT_LE(Out.Attempts, ROpts.MaxAttempts);
  // The dead helpers must be gone and the arithmetic shell stripped: the
  // divergence needs only the conditional, so the residual entry fits in
  // a handful of instructions.
  EXPECT_EQ(Out.Minimized.Source.find("pad"), std::string::npos);
  EXPECT_EQ(Out.Minimized.Source.find("noise"), std::string::npos);
  EXPECT_LE(Out.EntryInsns, 10u);
  // The minimized case still diverges — by construction of adoption.
  DiffResult Still = runCase(Out.Minimized, Opts);
  ASSERT_TRUE(Still.Diverged);
}

TEST(Reducer, NonDivergingInputReturnsImmediately) {
  ReduceOutcome Out = reduceCase(powerCase(), DiffOptions{});
  EXPECT_FALSE(Out.Diverged);
  EXPECT_EQ(Out.Attempts, 1u);
}

// -- Corpus ---------------------------------------------------------------

TEST(Corpus, DeduplicatesByFingerprint) {
  Corpus P;
  EXPECT_TRUE(P.add(powerCase()));
  EXPECT_FALSE(P.add(powerCase()));
  FuzzCase Other = powerCase();
  Other.Args[1] = 6;
  EXPECT_TRUE(P.add(Other));
  EXPECT_EQ(P.size(), 2u);
}

TEST(Corpus, SaveAndLoadRoundTrips) {
  std::string Dir = ::testing::TempDir() + "/pecomp-fuzz-corpus";
  FuzzCase C = powerCase();
  auto Path = Corpus::saveEntry(Dir, C);
  ASSERT_TRUE(Path.ok()) << Path.error().render();
  (void)Corpus::saveEntry(Dir, C); // same fingerprint, same file

  Corpus P;
  EXPECT_EQ(P.loadDirectory(Dir), 1u);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P.cases()[0].fingerprint(), C.fingerprint());
}

// -- Mutator --------------------------------------------------------------

TEST(Mutator, MutationsPreserveCaseValidity) {
  std::mt19937 Rng(42);
  FuzzCase C = powerCase();
  for (Mutation M : {Mutation::SpliceBody, Mutation::TweakConstant,
                     Mutation::FlipDivision, Mutation::TweakArg,
                     Mutation::PerturbLimits}) {
    Result<FuzzCase> Out = mutateCase(C, M, Rng);
    ASSERT_TRUE(Out.ok()) << mutationName(M) << ": " << Out.error().render();
    // Whatever the mutation did, the case either runs or skips cleanly —
    // the differential itself must never be the thing that breaks.
    DiffResult R = runCase(*Out);
    if (!R.Skipped)
      EXPECT_FALSE(R.Diverged)
          << mutationName(M) << ": " << R.Diverged->render();
  }
}

TEST(Mutator, FlipDivisionTogglesOneSlot) {
  std::mt19937 Rng(1);
  FuzzCase C = powerCase();
  auto Out = mutateCase(C, Mutation::FlipDivision, Rng);
  ASSERT_TRUE(Out.ok());
  EXPECT_EQ(Out->Division.size(), C.Division.size());
  size_t Differs = 0;
  for (size_t I = 0; I != C.Division.size(); ++I)
    Differs += Out->Division[I] != C.Division[I];
  EXPECT_EQ(Differs, 1u);
}

// -- Generator and fuzzer loop -------------------------------------------

TEST(ProgramGen, DeterministicForSeed) {
  Arena A1, A2;
  ExprFactory F1(A1), F2(A2);
  Program P1 = ProgramGen(99, F1).generate();
  Program P2 = ProgramGen(99, F2).generate();
  EXPECT_EQ(P1.print(), P2.print());
  Program P3 = ProgramGen(100, F1).generate();
  EXPECT_NE(P1.print(), P3.print());
}

TEST(Fuzzer, CleanPipelineProducesNoFindings) {
  FuzzerOptions Opts;
  Opts.Seed = 5;
  Opts.Iterations = 25;
  Fuzzer F(Opts);
  const FuzzerStats &S = F.run();
  EXPECT_EQ(S.Findings, 0u);
  EXPECT_GT(S.Executed, 0u);
  EXPECT_GT(S.CoverageFeatures, 0u);
  EXPECT_GT(F.corpus().size(), 0u); // coverage novelty fed the corpus
  EXPECT_NE(S.json().find("\"findings\": 0"), std::string::npos);
}

TEST(Fuzzer, FindsInjectedBugAndMinimizesIt) {
  FuzzerOptions Opts;
  Opts.Seed = 11;
  Opts.Iterations = 150;
  Opts.Perturb = false;
  Opts.Inject = InjectedBug::BranchPolarity;
  Opts.MaxFindings = 1;
  Fuzzer F(Opts);
  const FuzzerStats &S = F.run();
  ASSERT_GE(S.Findings, 1u);
  EXPECT_LE(F.findings()[0].EntryInsns, 10u);
}

} // namespace
