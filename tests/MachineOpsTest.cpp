//===- tests/MachineOpsTest.cpp - Instruction-level VM tests ----------------===//
///
/// \file
/// Exercises each opcode through hand-built code objects (via the
/// Compilators/Fragment layer), independent of any compiler front end:
/// operand encoding, jump resolution in both directions, closure capture,
/// tail-call frame reuse, and stack-slide cleanup.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/Compilators.h"

using namespace pecomp;
using namespace pecomp::test;
using namespace pecomp::compiler;
using vm::Op;
using vm::Value;

namespace {

class MachineOps : public ::testing::Test {
protected:
  MachineOps()
      : Store(W.Heap), Comp(Store, Globals), M(W.Heap) {}

  /// Runs a code object with \p Args.
  Result<Value> run(const vm::CodeObject *Code, std::vector<Value> Args) {
    M.setFuel(1'000'000);
    return M.call(M.makeProcedure(Code), Args);
  }

  World W;
  vm::CodeStore Store;
  vm::GlobalTable Globals;
  Compilators Comp;
  vm::Machine M;
};

TEST_F(MachineOps, ConstAndReturn) {
  const vm::CodeObject *Code = Comp.makeCodeObject(
      "k", {}, {}, [&](const CEnv &, uint32_t) {
        return Comp.returnValue(Comp.pushLiteral(Value::fixnum(99)));
      });
  PECOMP_UNWRAP(R, run(Code, {}));
  expectValueEq(R, Value::fixnum(99));
}

TEST_F(MachineOps, LocalRefFetchesParameters) {
  Symbol A = Symbol::intern("a"), B = Symbol::intern("b");
  std::vector<Symbol> Params = {A, B};
  const vm::CodeObject *Code = Comp.makeCodeObject(
      "second", Params, {}, [&](const CEnv &Env, uint32_t) {
        return Comp.returnValue(Comp.pushVar(Env, B));
      });
  PECOMP_UNWRAP(R, run(Code, {Value::fixnum(1), Value::fixnum(2)}));
  expectValueEq(R, Value::fixnum(2));
}

TEST_F(MachineOps, PrimPopsArgsAndPushesResult) {
  Symbol A = Symbol::intern("a");
  std::vector<Symbol> Params = {A};
  const vm::CodeObject *Code = Comp.makeCodeObject(
      "inc", Params, {}, [&](const CEnv &Env, uint32_t) {
        const Fragment *Args[] = {Comp.pushVar(Env, A),
                                  Comp.pushLiteral(Value::fixnum(1))};
        return Comp.returnValue(Comp.primApp(PrimOp::Add, Args));
      });
  PECOMP_UNWRAP(R, run(Code, {Value::fixnum(41)}));
  expectValueEq(R, Value::fixnum(42));
}

TEST_F(MachineOps, JumpIfFalseTakesTheRightBranch) {
  Symbol A = Symbol::intern("a");
  std::vector<Symbol> Params = {A};
  const vm::CodeObject *Code = Comp.makeCodeObject(
      "sign", Params, {}, [&](const CEnv &Env, uint32_t) {
        const Fragment *Test[] = {Comp.pushVar(Env, A),
                                  Comp.pushLiteral(Value::fixnum(0))};
        return Comp.ifThenElse(
            Comp.primApp(PrimOp::Lt, Test),
            Comp.returnValue(
                Comp.pushLiteral(Value::symbol(Symbol::intern("neg")))),
            Comp.returnValue(
                Comp.pushLiteral(Value::symbol(Symbol::intern("pos")))));
      });
  PECOMP_UNWRAP(Neg, run(Code, {Value::fixnum(-5)}));
  expectValueEq(Neg, Value::symbol(Symbol::intern("neg")));
  PECOMP_UNWRAP(Pos, run(Code, {Value::fixnum(5)}));
  expectValueEq(Pos, Value::symbol(Symbol::intern("pos")));
}

TEST_F(MachineOps, MakeClosureCapturesValues) {
  // child: () -> captured value; parent(a): ((closure-over a))
  Symbol A = Symbol::intern("a");
  std::vector<Symbol> Params = {A};
  std::vector<Symbol> Captured = {A};
  const vm::CodeObject *Child = Comp.makeCodeObject(
      "child", {}, Captured, [&](const CEnv &Env, uint32_t) {
        return Comp.returnValue(Comp.pushVar(Env, A)); // FreeRef
      });
  const vm::CodeObject *Parent = Comp.makeCodeObject(
      "parent", Params, {}, [&](const CEnv &Env, uint32_t) {
        return Comp.call(Comp.pushClosure(Env, Child, Captured), {},
                         /*Tail=*/true);
      });
  PECOMP_UNWRAP(R, run(Parent, {Value::fixnum(123)}));
  expectValueEq(R, Value::fixnum(123));
}

TEST_F(MachineOps, GlobalRefReadsTheGlobalVector) {
  uint16_t Slot = Globals.lookupOrAdd(Symbol::intern("the-global"));
  M.setGlobal(Slot, Value::fixnum(7));
  const vm::CodeObject *Code = Comp.makeCodeObject(
      "g", {}, {}, [&](const CEnv &Env, uint32_t) {
        return Comp.returnValue(
            Comp.pushVar(Env, Symbol::intern("the-global")));
      });
  PECOMP_UNWRAP(R, run(Code, {}));
  expectValueEq(R, Value::fixnum(7));
}

TEST_F(MachineOps, TailCallReusesTheFrame) {
  // loop(n): if n == 0 then 'done else loop(n-1) — frame count must not
  // grow, which the fuel ceiling indirectly checks (a million iterations
  // with non-reused frames would exhaust memory long before fuel).
  Symbol N = Symbol::intern("n");
  Symbol LoopName = Symbol::intern("op-loop");
  std::vector<Symbol> Params = {N};
  uint16_t Slot = Globals.lookupOrAdd(LoopName);
  const vm::CodeObject *Loop = Comp.makeCodeObject(
      "op-loop", Params, {}, [&](const CEnv &Env, uint32_t) {
        const Fragment *TestArgs[] = {Comp.pushVar(Env, N)};
        const Fragment *DecArgs[] = {Comp.pushVar(Env, N),
                                     Comp.pushLiteral(Value::fixnum(1))};
        const Fragment *CallArgs[] = {Comp.primApp(PrimOp::Sub, DecArgs)};
        return Comp.ifThenElse(
            Comp.primApp(PrimOp::ZeroP, TestArgs),
            Comp.returnValue(
                Comp.pushLiteral(Value::symbol(Symbol::intern("done")))),
            Comp.call(Comp.pushVar(Env, LoopName), CallArgs, /*Tail=*/true));
      });
  M.setGlobal(Slot, M.makeProcedure(Loop));
  M.setFuel(100'000'000);
  PECOMP_UNWRAP(R, M.call(M.getGlobal(Slot), {{Value::fixnum(300000)}}));
  expectValueEq(R, Value::symbol(Symbol::intern("done")));
}

TEST_F(MachineOps, BackwardJumpsResolve) {
  // A hand-assembled countdown loop using an explicit backward Jump and a
  // Slide that overwrites the parameter slot in place:
  //
  //   start: (zero? local0) ; JumpIfFalse else ; 'ok ; Return
  //   else:  (local0 - 1) ; Slide 1 ; Jump start
  Symbol N = Symbol::intern("n");
  std::vector<Symbol> Params = {N};
  FragmentFactory &F = Comp.frags();
  const vm::CodeObject *Code = Comp.makeCodeObject(
      "raw-loop", Params, {}, [&](const CEnv &Env, uint32_t) {
        LabelId Start = F.makeLabel();
        LabelId Else = F.makeLabel();
        const Fragment *TestArgs[] = {Comp.pushVar(Env, N)};
        const Fragment *DecArgs[] = {Comp.pushVar(Env, N),
                                     Comp.pushLiteral(Value::fixnum(1))};
        return F.attachLabel(
            Start,
            F.seq({
                Comp.primApp(PrimOp::ZeroP, TestArgs),
                F.instrUsingLabel(Op::JumpIfFalse, Else),
                Comp.returnValue(
                    Comp.pushLiteral(Value::symbol(Symbol::intern("ok")))),
                F.attachLabel(
                    Else, F.seq({Comp.primApp(PrimOp::Sub, DecArgs),
                                 F.instr(Op::Slide, {Operand::imm(1)}),
                                 F.instrUsingLabel(Op::Jump, Start)})),
            }));
      });
  PECOMP_UNWRAP(R, run(Code, {Value::fixnum(10000)}));
  expectValueEq(R, Value::symbol(Symbol::intern("ok")));
}

TEST_F(MachineOps, SlideDropsBeneathTheTop) {
  // Slide is emitted by the stock compiler for non-tail lets; drive it
  // through that path and check stack hygiene with deep nesting.
  World W2;
  std::string Source = "(define (f x) (+ 0 ";
  for (int I = 0; I != 30; ++I)
    Source += "(let ((t" + std::to_string(I) + " (+ x " +
              std::to_string(I) + "))) ";
  Source += "x";
  Source += std::string(30, ')');
  Source += "))";
  PECOMP_UNWRAP(P, W2.parse(Source));
  PECOMP_UNWRAP(R, W2.runStock(P, "f", {W2.num(5)}));
  expectValueEq(R, W2.num(5));
}

TEST_F(MachineOps, CallArityIsCheckedAtRuntime) {
  const vm::CodeObject *Two = Comp.makeCodeObject(
      "two", std::vector<Symbol>{Symbol::intern("x"), Symbol::intern("y")},
      {}, [&](const CEnv &, uint32_t) {
        return Comp.returnValue(Comp.pushLiteral(Value::fixnum(0)));
      });
  Result<Value> R = run(Two, {Value::fixnum(1)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("expects 2"), std::string::npos);
}

} // namespace
