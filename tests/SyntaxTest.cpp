//===- tests/SyntaxTest.cpp - AST, printer, ANF checker, support -----------===//

#include "TestUtil.h"

#include "frontend/Parse.h"
#include "support/Arena.h"
#include "support/Casting.h"
#include "syntax/AnfCheck.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

// -- Primitives table ------------------------------------------------------------

TEST(PrimitivesTest, TableIsConsistent) {
  for (unsigned I = 0; I != NumPrimOps; ++I) {
    PrimOp Op = static_cast<PrimOp>(I);
    std::optional<PrimOp> Found = primByName(Symbol::intern(primName(Op)));
    ASSERT_TRUE(Found.has_value()) << primName(Op);
    EXPECT_EQ(*Found, Op);
    EXPECT_GE(primArity(Op), 1u);
    EXPECT_LE(primArity(Op), 2u);
  }
  EXPECT_FALSE(primByName(Symbol::intern("frobnicate")).has_value());
}

TEST(PrimitivesTest, PurityClassification) {
  EXPECT_TRUE(primIsPure(PrimOp::Add));
  EXPECT_TRUE(primIsPure(PrimOp::Car));
  EXPECT_FALSE(primIsPure(PrimOp::Error));
  EXPECT_FALSE(primIsPure(PrimOp::MakeBox));
  EXPECT_FALSE(primIsPure(PrimOp::BoxSet));
  EXPECT_FALSE(primIsPure(PrimOp::BoxRef));
}

// -- Structural equality -------------------------------------------------------------

TEST(ExprEqualsTest, DistinguishesStructure) {
  World W;
  auto Parse = [&](const char *Text) {
    Result<const Datum *> D = readDatum(Text, W.Datums);
    Result<const Expr *> E = parseExpr(*D, W.Exprs);
    EXPECT_TRUE(E.ok());
    return *E;
  };
  EXPECT_TRUE(Parse("(+ 1 2)")->equals(Parse("(+ 1 2)")));
  EXPECT_FALSE(Parse("(+ 1 2)")->equals(Parse("(+ 2 1)")));
  EXPECT_FALSE(Parse("(+ 1 2)")->equals(Parse("(- 1 2)")));
  EXPECT_TRUE(Parse("(lambda (q) q)")->equals(Parse("(lambda (q) q)")));
  EXPECT_FALSE(Parse("(lambda (q) q)")->equals(Parse("(lambda (r) r)")));
  EXPECT_TRUE(Parse("(if 1 2 3)")->equals(Parse("(if 1 2 3)")));
  EXPECT_FALSE(Parse("(if 1 2 3)")->equals(Parse("(if 1 2 4)")));
  EXPECT_TRUE(Parse("'(a b)")->equals(Parse("'(a b)")));
}

// -- Printer ----------------------------------------------------------------------------

TEST(PrinterTest, ProgramsRoundTripThroughTheFrontEnd) {
  World W;
  const char *Sources[] = {
      "(define (f x) (+ x 1))",
      "(define (f x) (if (zero? x) '(a \"s\" #\\c #t) (f (- x 1))))",
      "(define (f x) (let ((g (lambda (y) (* y y)))) (g (g x))))",
      "(define (f x y) (cons 'pair (cons x (cons y '()))))",
  };
  for (const char *Source : Sources) {
    PECOMP_UNWRAP(P, W.parse(Source));
    std::string Printed = P.print();
    PECOMP_UNWRAP(Reparsed, W.parse(Printed));
    PECOMP_UNWRAP(A, W.evalCall(P, "f",
                                P.Defs[0].Fn->params().size() == 1
                                    ? std::vector<vm::Value>{W.num(3)}
                                    : std::vector<vm::Value>{W.num(3),
                                                             W.num(4)}));
    PECOMP_UNWRAP(B, W.evalCall(Reparsed, "f",
                                P.Defs[0].Fn->params().size() == 1
                                    ? std::vector<vm::Value>{W.num(3)}
                                    : std::vector<vm::Value>{W.num(3),
                                                             W.num(4)}));
    expectValueEq(A, B);
  }
}

// -- ANF checker ----------------------------------------------------------------------------

TEST(AnfCheckTest, AcceptsAnfForms) {
  World W;
  PECOMP_UNWRAP(P, W.parseAnf(
      "(define (f x) (let ((t (+ x 1))) (if (zero? t) (f t) (* t 2))))"));
  EXPECT_FALSE(checkAnf(P));
}

TEST(AnfCheckTest, RejectsNestedSeriousArguments) {
  World W;
  Result<const Datum *> D = readDatum("(+ (+ 1 2) 3)", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  auto Err = checkAnf(*E);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("trivial"), std::string::npos);
}

TEST(AnfCheckTest, RejectsNonTrivialIfTest) {
  World W;
  Result<const Datum *> D =
      readDatum("(lambda (x) (if (+ x 1) 1 2))", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  EXPECT_TRUE(checkAnf(*E).has_value());
}

TEST(AnfCheckTest, RejectsLetOfLet) {
  World W;
  Result<const Datum *> D =
      readDatum("(lambda (x) (let (a (let (b x) b)) a))", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  auto Err = checkAnf(*E);
  ASSERT_TRUE(Err.has_value());
}

TEST(AnfCheckTest, ChecksInsideLambdas) {
  World W;
  Result<const Datum *> D =
      readDatum("(lambda (x) (lambda (y) (+ (+ y 1) x)))", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  EXPECT_TRUE(checkAnf(*E).has_value());
}

TEST(AnfCheckTest, ReportsTheOffendingDefinition) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (good x) x)"
                           "(define (bad x) (+ (+ x 1) 2))"));
  auto Err = checkAnf(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("bad"), std::string::npos);
}

// -- Arena ------------------------------------------------------------------------------------

TEST(ArenaTest, RunsDestructorsInReverseOrder) {
  std::vector<int> Order;
  struct Tracker {
    std::vector<int> *Order;
    int Id;
    ~Tracker() { Order->push_back(Id); }
  };
  {
    Arena A;
    A.create<Tracker>(Tracker{&Order, 1});
    A.create<Tracker>(Tracker{&Order, 2});
    A.create<Tracker>(Tracker{&Order, 3});
  }
  // Each create() constructs a temporary too; only check relative order of
  // the arena-owned objects: the last-created is destroyed first.
  ASSERT_GE(Order.size(), 3u);
  std::vector<int> ArenaOrder;
  for (size_t I = Order.size() - 3; I != Order.size(); ++I)
    ArenaOrder.push_back(Order[I]);
  EXPECT_EQ(ArenaOrder, (std::vector<int>{3, 2, 1}));
}

TEST(ArenaTest, HandlesLargeAllocations) {
  Arena A;
  void *P = A.allocate(1 << 21, 8); // bigger than the max chunk size
  ASSERT_NE(P, nullptr);
  memset(P, 0xAB, 1 << 21);
  EXPECT_GE(A.bytesUsed(), size_t(1) << 21);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena A;
  A.allocate(1, 1);
  void *P = A.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
}

// -- Result/Error -----------------------------------------------------------------------------

TEST(ResultTest, HoldsValueOrError) {
  Result<int> Ok(42);
  EXPECT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);

  Result<int> Bad(Error("nope", SourceLoc(3, 7)));
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error().render(), "3:7: nope");
  EXPECT_EQ(Error("plain").render(), "plain");
}

} // namespace
