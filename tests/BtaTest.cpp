//===- tests/BtaTest.cpp - Binding-time analysis unit tests ----------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;
using bta::BT;

namespace {

/// Runs the front end + BTA and returns the annotated program's printout
/// (the paper-style two-level notation), for structure assertions.
std::string annotate(World &W, std::string_view Source,
                     std::string_view Entry, std::string_view Division,
                     const bta::BtaOptions &Opts = {}) {
  pgg::PggOptions POpts;
  POpts.Bta = Opts;
  auto Gen =
      pgg::GeneratingExtension::create(W.Heap, Source, Entry, Division, POpts);
  EXPECT_TRUE(Gen.ok()) << (Gen.ok() ? "" : Gen.error().render());
  if (!Gen.ok())
    return "";
  return (*Gen)->annotated().print();
}

TEST(BtaTest, FullyStaticComputationStaysStatic) {
  World W;
  std::string Ann = annotate(W, "(define (f s d) (+ d (* s s)))", "f", "SD");
  // The static multiplication is unannotated; the dynamic addition is +D
  // with a lift on the static operand.
  EXPECT_NE(Ann.find("(* s"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("+D"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("(lift (* "), std::string::npos) << Ann;
}

TEST(BtaTest, StaticConditionalStaysStatic) {
  World W;
  std::string Ann =
      annotate(W, "(define (f s d) (if (zero? s) d (+ d 1)))", "f", "SD");
  EXPECT_EQ(Ann.find("ifD"), std::string::npos) << Ann;
}

TEST(BtaTest, DynamicConditionalIsAnnotatedDynamic) {
  World W;
  std::string Ann =
      annotate(W, "(define (f s d) (if (zero? d) s 2))", "f", "SD");
  EXPECT_NE(Ann.find("(ifD"), std::string::npos) << Ann;
  // Both branches are static values lifted into the dynamic conditional.
  EXPECT_NE(Ann.find("(lift s"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("(lift 2)"), std::string::npos) << Ann;
}

TEST(BtaTest, ImpurePrimitivesAreAlwaysDynamic) {
  World W;
  std::string Ann =
      annotate(W, "(define (f s d) (if (zero? s) (error \"x\") d))", "f",
               "SD");
  EXPECT_NE(Ann.find("errorD"), std::string::npos) << Ann;
}

TEST(BtaTest, BoxesAreAlwaysDynamic) {
  World W;
  std::string Ann = annotate(
      W, "(define (f s) (let ((b s)) (begin (set! b 1) b)))", "f", "S");
  EXPECT_NE(Ann.find("make-boxD"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("box-refD"), std::string::npos) << Ann;
}

TEST(BtaTest, RecursiveFunctionWithDynamicIfIsMemoized) {
  World W;
  std::string Ann = annotate(
      W, "(define (loop s d) (if (zero? d) s (loop s (- d 1))))", "loop",
      "SD");
  EXPECT_NE(Ann.find("(defineM (loop"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("(memo loop"), std::string::npos) << Ann;
}

TEST(BtaTest, StaticRecursionUnfolds) {
  World W;
  std::string Ann = annotate(
      W, "(define (len s d) (if (null? s) d (len (cdr s) d)))", "len", "SD");
  EXPECT_EQ(Ann.find("defineM"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("(unfold len"), std::string::npos) << Ann;
}

TEST(BtaTest, NonRecursiveHelpersUnfold) {
  World W;
  std::string Ann = annotate(
      W,
      "(define (helper x) (+ x 1))"
      "(define (f s d) (if (zero? d) (helper s) (f s (- d 1))))",
      "f", "SD");
  EXPECT_NE(Ann.find("(unfold helper"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("(defineM (f"), std::string::npos) << Ann;
}

TEST(BtaTest, ParameterBindingTimesJoinAcrossCallSites) {
  World W;
  // g is called with a static value in one place and a dynamic one in
  // another; its parameter must be dynamic everywhere.
  std::string Ann = annotate(W,
                             "(define (g x) (+ x 1))"
                             "(define (f s d) (+ (g s) (g d)))",
                             "f", "SD");
  EXPECT_NE(Ann.find("(define (g x.1:D)"), std::string::npos) << Ann;
}

TEST(BtaTest, DynamicLambdaParametersAreDynamic) {
  World W;
  std::string Ann = annotate(
      W, "(define (f s) ((lambda (k) (+ k 1)) s))", "f", "S");
  // The direct application is a beta redex, so k keeps s's binding time
  // (static). A *residualized* lambda's parameter is dynamic:
  std::string Ann2 = annotate(
      W, "(define (apply1 g x) (g x))"
         "(define (f s) (apply1 (lambda (k) (+ k 1)) s))",
      "f", "S");
  EXPECT_NE(Ann2.find("lambdaD"), std::string::npos) << Ann2;
}

TEST(BtaTest, ForceMemoOverridesHeuristic) {
  World W;
  bta::BtaOptions Opts;
  Opts.ForceMemo.insert(Symbol::intern("helper"));
  std::string Ann = annotate(W,
                             "(define (helper x) (+ x 1))"
                             "(define (f d) (helper d))",
                             "f", "D", Opts);
  EXPECT_NE(Ann.find("(memo helper"), std::string::npos) << Ann;
}

TEST(BtaTest, ForceUnfoldOverridesHeuristic) {
  World W;
  bta::BtaOptions Opts;
  Opts.ForceUnfold.insert(Symbol::intern("loop"));
  std::string Ann = annotate(
      W, "(define (loop s d) (if (zero? d) s (loop s (- d 1))))", "loop",
      "SD", Opts);
  EXPECT_EQ(Ann.find("defineM"), std::string::npos) << Ann;
}

TEST(BtaTest, EntryDivisionSizeMustMatchArity) {
  World W;
  auto Gen = pgg::GeneratingExtension::create(
      W.Heap, "(define (f x y) (+ x y))", "f", "S");
  ASSERT_FALSE(Gen.ok());
  EXPECT_NE(Gen.error().message().find("parameters"), std::string::npos);
}

TEST(BtaTest, UnknownEntryIsAnError) {
  World W;
  auto Gen = pgg::GeneratingExtension::create(
      W.Heap, "(define (f x) x)", "nope", "S");
  ASSERT_FALSE(Gen.ok());
  EXPECT_NE(Gen.error().message().find("not defined"), std::string::npos);
}

TEST(BtaTest, BadDivisionCharacterIsAnError) {
  World W;
  auto Gen = pgg::GeneratingExtension::create(
      W.Heap, "(define (f x) x)", "f", "Q");
  ASSERT_FALSE(Gen.ok());
}

TEST(BtaTest, KnownCallArityMismatchIsAnError) {
  World W;
  auto Gen = pgg::GeneratingExtension::create(
      W.Heap, "(define (g x) x)(define (f d) (g d d))", "f", "D");
  ASSERT_FALSE(Gen.ok());
  EXPECT_NE(Gen.error().message().find("argument"), std::string::npos);
}

TEST(BtaTest, EffectiveDivisionReportsPromotions) {
  World W;
  // s is declared static but joins with a dynamic call-site argument.
  auto Gen = pgg::GeneratingExtension::create(
      W.Heap,
      "(define (g x) (+ x 1))"
      "(define (f s d) (+ (g s) (g d)))",
      "f", "SD");
  ASSERT_TRUE(Gen.ok());
  std::vector<BT> Division = (*Gen)->effectiveDivision();
  ASSERT_EQ(Division.size(), 2u);
  // f's own parameters keep their declared binding times here...
  EXPECT_EQ(Division[0], BT::Static);
  EXPECT_EQ(Division[1], BT::Dynamic);
}

TEST(BtaTest, StaticValueFlowsThroughLet) {
  World W;
  std::string Ann = annotate(
      W, "(define (f s d) (let ((t (* s 2))) (+ d t)))", "f", "SD");
  // The let is static (no letD); its use inside +D is lifted.
  EXPECT_EQ(Ann.find("letD"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find("(lift t"), std::string::npos) << Ann;
}

TEST(BtaTest, DynamicLetNamesResidualValue) {
  World W;
  std::string Ann = annotate(
      W, "(define (f s d) (let ((t (* d 2))) (+ t s)))", "f", "SD");
  EXPECT_NE(Ann.find("(letD"), std::string::npos) << Ann;
}

TEST(BtaTest, ForceDynamicGeneralizesEvolvingCounters) {
  // The counter i is congruent-but-evolving static (bounded static
  // variation): without generalization every memo key is new and the
  // guard aborts; with ForceDynamic the specialization terminates.
  World W;
  const char *Src =
      "(define (walk s d i)"
      "  (if (null? d) i (walk s (cdr d) (+ i 1))))";

  pgg::PggOptions Diverging;
  Diverging.Spec.MaxResidualFunctions = 30;
  PECOMP_UNWRAP(Bad, pgg::GeneratingExtension::create(W.Heap, Src, "walk",
                                                      "SDS", Diverging));
  std::optional<vm::Value> BadArgs[] = {W.num(7), std::nullopt, W.num(0)};
  EXPECT_FALSE(Bad->generateSource(BadArgs).ok());

  pgg::PggOptions Opts;
  Opts.Bta.ForceDynamic.emplace_back(Symbol::intern("walk"), 2u);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(W.Heap, Src, "walk",
                                                      "SDS", Opts));
  std::optional<vm::Value> Args[] = {W.num(7), std::nullopt, W.num(0)};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  PECOMP_UNWRAP(R, W.runAnf(Res.Residual, Res.Entry.str(),
                            {W.value("(a b c)")}));
  expectValueEq(R, W.num(3));
}

TEST(BtaTest, ForceDynamicValidatesItsTargets) {
  World W;
  pgg::PggOptions Opts;
  Opts.Bta.ForceDynamic.emplace_back(Symbol::intern("nope"), 0u);
  EXPECT_FALSE(pgg::GeneratingExtension::create(
                   W.Heap, "(define (f x) x)", "f", "D", Opts)
                   .ok());
  pgg::PggOptions Opts2;
  Opts2.Bta.ForceDynamic.emplace_back(Symbol::intern("f"), 5u);
  EXPECT_FALSE(pgg::GeneratingExtension::create(
                   W.Heap, "(define (f x) x)", "f", "D", Opts2)
                   .ok());
}

TEST(BtaTest, AnnotatedProgramPrintsMemoMarkers) {
  World W;
  std::string Ann = annotate(
      W, "(define (f s d) (if (zero? d) s (f s (- d 1))))", "f", "SD");
  // Division markers on parameters.
  EXPECT_NE(Ann.find(":S"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find(":D"), std::string::npos) << Ann;
}

} // namespace
