//===- tests/SexpTest.cpp - Reader/writer/datum unit tests -----------------===//

#include "sexp/Reader.h"
#include "sexp/WellKnown.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <iterator>

using namespace pecomp;

namespace {

class SexpTest : public ::testing::Test {
protected:
  const Datum *read(std::string_view Text) {
    Result<const Datum *> D = readDatum(Text, Factory);
    EXPECT_TRUE(D.ok()) << (D.ok() ? "" : D.error().render());
    return D.ok() ? *D : Factory.nil();
  }

  std::string roundTrip(std::string_view Text) { return read(Text)->write(); }

  Arena A;
  DatumFactory Factory{A};
};

// -- Symbols -------------------------------------------------------------

TEST(SymbolTest, InterningIsIdempotent) {
  Symbol A = Symbol::intern("hello");
  Symbol B = Symbol::intern("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.str(), "hello");
}

TEST(SymbolTest, DistinctNamesDistinctSymbols) {
  EXPECT_NE(Symbol::intern("a"), Symbol::intern("b"));
}

TEST(SymbolTest, FreshNeverCollides) {
  Symbol Base = Symbol::intern("x");
  Symbol F1 = Symbol::fresh("x");
  Symbol F2 = Symbol::fresh("x");
  EXPECT_NE(F1, Base);
  EXPECT_NE(F1, F2);
}

TEST(SymbolTest, FreshSkipsExistingInternedNames) {
  // Pre-intern a name fresh() would otherwise produce.
  Symbol F1 = Symbol::fresh("collide");
  std::string Taken = F1.str();
  Symbol Pre = Symbol::intern(Taken);
  EXPECT_EQ(F1, Pre);
  EXPECT_NE(Symbol::fresh("collide"), Pre);
}

TEST(SymbolTest, FromIdRoundTrips) {
  Symbol S = Symbol::intern("round-trip");
  EXPECT_EQ(Symbol::fromId(S.id()), S);
}

TEST(SymbolTest, DefaultSymbolIsInvalid) {
  EXPECT_FALSE(Symbol().isValid());
  EXPECT_TRUE(Symbol::intern("x").isValid());
}

// -- Reading atoms ---------------------------------------------------------

TEST_F(SexpTest, ReadsFixnums) {
  EXPECT_EQ(cast<FixnumDatum>(read("42"))->value(), 42);
  EXPECT_EQ(cast<FixnumDatum>(read("-17"))->value(), -17);
  EXPECT_EQ(cast<FixnumDatum>(read("+5"))->value(), 5);
  EXPECT_EQ(cast<FixnumDatum>(read("0"))->value(), 0);
}

TEST_F(SexpTest, ReadsBooleans) {
  EXPECT_TRUE(cast<BooleanDatum>(read("#t"))->value());
  EXPECT_FALSE(cast<BooleanDatum>(read("#f"))->value());
}

TEST_F(SexpTest, ReadsSymbols) {
  EXPECT_EQ(cast<SymbolDatum>(read("foo"))->symbol().str(), "foo");
  EXPECT_EQ(cast<SymbolDatum>(read("set!"))->symbol().str(), "set!");
  EXPECT_EQ(cast<SymbolDatum>(read("+"))->symbol().str(), "+");
  EXPECT_EQ(cast<SymbolDatum>(read("list->vector"))->symbol().str(),
            "list->vector");
}

TEST_F(SexpTest, ReadsStringsWithEscapes) {
  EXPECT_EQ(cast<StringDatum>(read("\"hi\""))->value(), "hi");
  EXPECT_EQ(cast<StringDatum>(read("\"a\\nb\""))->value(), "a\nb");
  EXPECT_EQ(cast<StringDatum>(read("\"q\\\"q\""))->value(), "q\"q");
  EXPECT_EQ(cast<StringDatum>(read("\"t\\tt\""))->value(), "t\tt");
  EXPECT_EQ(cast<StringDatum>(read("\"b\\\\b\""))->value(), "b\\b");
}

TEST_F(SexpTest, ReadsCharacters) {
  EXPECT_EQ(cast<CharDatum>(read("#\\a"))->value(), 'a');
  EXPECT_EQ(cast<CharDatum>(read("#\\space"))->value(), ' ');
  EXPECT_EQ(cast<CharDatum>(read("#\\newline"))->value(), '\n');
  EXPECT_EQ(cast<CharDatum>(read("#\\tab"))->value(), '\t');
}

// -- Reading structures ------------------------------------------------------

TEST_F(SexpTest, ReadsProperLists) {
  const Datum *D = read("(1 2 3)");
  std::vector<const Datum *> Items;
  ASSERT_TRUE(listElements(D, Items));
  ASSERT_EQ(Items.size(), 3u);
  EXPECT_EQ(cast<FixnumDatum>(Items[1])->value(), 2);
  EXPECT_EQ(listLength(D), 3);
}

TEST_F(SexpTest, ReadsNestedLists) {
  EXPECT_EQ(roundTrip("(a (b (c)) d)"), "(a (b (c)) d)");
}

TEST_F(SexpTest, ReadsDottedPairs) {
  const Datum *D = read("(1 . 2)");
  ASSERT_TRUE(isa<PairDatum>(D));
  EXPECT_EQ(listLength(D), -1);
  EXPECT_EQ(D->write(), "(1 . 2)");
}

TEST_F(SexpTest, ReadsImproperListTails) {
  EXPECT_EQ(roundTrip("(1 2 . 3)"), "(1 2 . 3)");
}

TEST_F(SexpTest, ReadsEmptyList) {
  EXPECT_TRUE(read("()")->isNil());
  EXPECT_TRUE(read("()")->isList());
}

TEST_F(SexpTest, QuoteExpandsToQuoteForm) {
  EXPECT_EQ(roundTrip("'x"), "(quote x)");
  EXPECT_EQ(roundTrip("'(1 2)"), "(quote (1 2))");
  EXPECT_EQ(roundTrip("''a"), "(quote (quote a))");
}

TEST_F(SexpTest, SkipsCommentsAndWhitespace) {
  EXPECT_EQ(roundTrip("; leading comment\n  ( 1 ; mid\n 2 )\n"), "(1 2)");
}

TEST_F(SexpTest, ReadAllReadsASequence) {
  Result<std::vector<const Datum *>> Ds = readAll("1 (2) three", Factory);
  ASSERT_TRUE(Ds.ok());
  EXPECT_EQ(Ds->size(), 3u);
}

TEST_F(SexpTest, ReadAllOnEmptyInputIsEmpty) {
  Result<std::vector<const Datum *>> Ds = readAll("  ; nothing\n", Factory);
  ASSERT_TRUE(Ds.ok());
  EXPECT_TRUE(Ds->empty());
}

// -- Reader errors ------------------------------------------------------------

TEST_F(SexpTest, RejectsUnterminatedList) {
  EXPECT_FALSE(readDatum("(1 2", Factory).ok());
}

TEST_F(SexpTest, RejectsUnterminatedString) {
  EXPECT_FALSE(readDatum("\"abc", Factory).ok());
}

TEST_F(SexpTest, RejectsStrayCloseParen) {
  EXPECT_FALSE(readDatum(")", Factory).ok());
}

TEST_F(SexpTest, RejectsTrailingInput) {
  EXPECT_FALSE(readDatum("1 2", Factory).ok());
}

TEST_F(SexpTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(readDatum("12abc", Factory).ok());
}

TEST_F(SexpTest, RejectsUnknownCharacterNames) {
  EXPECT_FALSE(readDatum("#\\bogus", Factory).ok());
}

TEST_F(SexpTest, RejectsUnknownHashSyntax) {
  EXPECT_FALSE(readDatum("#q", Factory).ok());
}

TEST_F(SexpTest, RejectsBadStringEscape) {
  EXPECT_FALSE(readDatum("\"\\q\"", Factory).ok());
}

TEST_F(SexpTest, ErrorsCarrySourceLocations) {
  Result<const Datum *> R = readDatum("(1\n   \"oops", Factory);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().loc().Line, 2u);
}

// -- Structural equality -------------------------------------------------------

TEST_F(SexpTest, EqualsIsStructural) {
  EXPECT_TRUE(read("(1 (a) \"s\")")->equals(read("(1 (a) \"s\")")));
  EXPECT_FALSE(read("(1 2)")->equals(read("(1 2 3)")));
  EXPECT_FALSE(read("(1 . 2)")->equals(read("(1 2)")));
  EXPECT_FALSE(read("1")->equals(read("#t")));
  EXPECT_FALSE(read("a")->equals(read("b")));
}

// -- Writer round trips ---------------------------------------------------------

struct RoundTripCase {
  const char *Text;
};

class WriterRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(WriterRoundTrip, ParseWriteParseIsIdentity) {
  Arena A;
  DatumFactory F(A);
  Result<const Datum *> First = readDatum(GetParam().Text, F);
  ASSERT_TRUE(First.ok()) << First.error().render();
  std::string Written = (*First)->write();
  Result<const Datum *> Second = readDatum(Written, F);
  ASSERT_TRUE(Second.ok()) << "re-reading '" << Written
                           << "': " << Second.error().render();
  EXPECT_TRUE((*First)->equals(*Second)) << Written;
}

INSTANTIATE_TEST_SUITE_P(
    Sexp, WriterRoundTrip,
    ::testing::Values(RoundTripCase{"42"}, RoundTripCase{"-7"},
                      RoundTripCase{"#t"}, RoundTripCase{"#f"},
                      RoundTripCase{"sym"}, RoundTripCase{"()"},
                      RoundTripCase{"(1 2 3)"}, RoundTripCase{"(1 . 2)"},
                      RoundTripCase{"(a (b . c) (d))"},
                      RoundTripCase{"\"str \\\"esc\\\" \\n\""},
                      RoundTripCase{"#\\x"}, RoundTripCase{"#\\space"},
                      RoundTripCase{"'quoted"},
                      RoundTripCase{"((deep (nest (ing))) fine)"}));

// -- Writer escaping regressions ------------------------------------------------
//
// The seed writer emitted \r and other control bytes raw inside string
// literals and after #\, so write() output did not re-read. These pin
// the escaped forms.

TEST_F(SexpTest, WritesCarriageReturnEscaped) {
  EXPECT_EQ(Factory.string("a\rb")->write(), "\"a\\rb\"");
  EXPECT_EQ(cast<StringDatum>(read("\"a\\rb\""))->value(), "a\rb");
}

TEST_F(SexpTest, WritesControlBytesAsHexEscapes) {
  EXPECT_EQ(Factory.string(std::string("\x01\x02", 2))->write(),
            "\"\\x01;\\x02;\"");
  EXPECT_EQ(Factory.string("\x7f")->write(), "\"\\x7f;\"");
  EXPECT_EQ(Factory.string(std::string(1, '\0'))->write(), "\"\\x00;\"");
  EXPECT_EQ(cast<StringDatum>(read("\"\\x41;\""))->value(), "A");
  // The ';' terminator keeps a following digit out of the escape.
  EXPECT_EQ(cast<StringDatum>(read("\"\\x41;7\""))->value(), "A7");
}

TEST_F(SexpTest, StringWithControlBytesRoundTrips) {
  std::string Bytes;
  for (int C = 0; C < 256; ++C)
    Bytes.push_back(static_cast<char>(C));
  const Datum *D = Factory.string(Bytes);
  Result<const Datum *> Back = readDatum(D->write(), Factory);
  ASSERT_TRUE(Back.ok()) << Back.error().render();
  EXPECT_EQ(cast<StringDatum>(*Back)->value(), Bytes);
}

TEST_F(SexpTest, WritesNonPrintableCharsAsHex) {
  EXPECT_EQ(Factory.charDatum('\r')->write(), "#\\return");
  EXPECT_EQ(Factory.charDatum('\0')->write(), "#\\x00");
  EXPECT_EQ(Factory.charDatum('\x1b')->write(), "#\\x1b");
  EXPECT_EQ(Factory.charDatum('\x7f')->write(), "#\\x7f");
  EXPECT_EQ(cast<CharDatum>(read("#\\return"))->value(), '\r');
  EXPECT_EQ(cast<CharDatum>(read("#\\x1b"))->value(), '\x1b');
  // One-character #\x still reads as the letter x.
  EXPECT_EQ(cast<CharDatum>(read("#\\x"))->value(), 'x');
}

TEST_F(SexpTest, EveryCharDatumRoundTrips) {
  for (int C = 0; C < 256; ++C) {
    const Datum *D = Factory.charDatum(static_cast<char>(C));
    Result<const Datum *> Back = readDatum(D->write(), Factory);
    ASSERT_TRUE(Back.ok()) << "char " << C << " wrote '" << D->write()
                           << "': " << Back.error().render();
    EXPECT_EQ(cast<CharDatum>(*Back)->value(), static_cast<char>(C))
        << "char " << C;
  }
}

// -- Reader fixnum range --------------------------------------------------------
//
// The seed reader accumulated digits in int64_t, which is signed-overflow
// UB for INT64_MIN and silently wrapped for longer literals.

TEST_F(SexpTest, ReadsInt64BoundaryLiterals) {
  EXPECT_EQ(cast<FixnumDatum>(read("9223372036854775807"))->value(),
            INT64_MAX);
  EXPECT_EQ(cast<FixnumDatum>(read("-9223372036854775808"))->value(),
            INT64_MIN);
}

TEST_F(SexpTest, RejectsOutOfRangeNumberLiterals) {
  EXPECT_FALSE(readDatum("9223372036854775808", Factory).ok());
  EXPECT_FALSE(readDatum("-9223372036854775809", Factory).ok());
  EXPECT_FALSE(readDatum("99999999999999999999999", Factory).ok());
  EXPECT_FALSE(readDatum("-99999999999999999999999", Factory).ok());
}

TEST_F(SexpTest, Int64BoundaryLiteralsRoundTrip) {
  EXPECT_EQ(roundTrip("9223372036854775807"), "9223372036854775807");
  EXPECT_EQ(roundTrip("-9223372036854775808"), "-9223372036854775808");
}

// -- Randomized write -> read round-trip property -------------------------------

/// Deterministic xorshift64* so failures reproduce; the standard <random>
/// engines are distribution-unstable across libstdc++ versions.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }
  /// Uniform-ish in [0, N).
  uint64_t below(uint64_t N) { return next() % N; }

private:
  uint64_t State;
};

const Datum *randomDatum(Rng &R, DatumFactory &F, unsigned Depth) {
  // Leaves only at the bottom; shallow trees stay mixed.
  unsigned Kind = static_cast<unsigned>(R.below(Depth == 0 ? 6 : 8));
  switch (Kind) {
  case 0:
    return F.fixnum(static_cast<int64_t>(R.next()));
  case 1: {
    // Boundary-biased fixnums.
    static const int64_t Edges[] = {0,         1,          -1,
                                    INT64_MAX, INT64_MIN,  INT64_MIN + 1,
                                    42,        -123456789, INT64_MAX - 1};
    return F.fixnum(Edges[R.below(std::size(Edges))]);
  }
  case 2:
    return F.boolean(R.below(2) == 0);
  case 3: {
    // Symbols over a conservative alphabet (the writer never escapes
    // symbol names, so exotic ones are out of round-trip scope).
    static const char Alphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789-+*/<=>!?";
    std::string Name(1 + R.below(8), 'a');
    for (char &C : Name)
      C = Alphabet[R.below(sizeof(Alphabet) - 1)];
    if (std::isdigit(static_cast<unsigned char>(Name[0])) ||
        ((Name[0] == '-' || Name[0] == '+') && Name.size() > 1 &&
         std::isdigit(static_cast<unsigned char>(Name[1]))))
      Name.insert(Name.begin(), 'a'); // don't collide with number syntax
    return F.symbol(Name);
  }
  case 4: {
    // Strings over the full byte range, including NUL and controls.
    std::string S(R.below(12), '\0');
    for (char &C : S)
      C = static_cast<char>(R.below(256));
    return F.string(std::move(S));
  }
  case 5:
    return F.charDatum(static_cast<char>(R.below(256)));
  case 6:
    return F.nil();
  default: {
    // Proper or dotted list of up to 4 elements.
    const Datum *Tail =
        R.below(4) == 0 ? randomDatum(R, F, 0) : F.nil();
    for (uint64_t N = R.below(4); N > 0; --N)
      Tail = F.pair(randomDatum(R, F, Depth - 1), Tail);
    // A dotted tail needs at least one leading element to be writable
    // as a list.
    if (!Tail->isPair() && !Tail->isNil())
      Tail = F.pair(randomDatum(R, F, Depth - 1), Tail);
    return Tail;
  }
  }
}

TEST_F(SexpTest, RandomDatumsSurviveWriteReadRoundTrip) {
  Rng R(20260805);
  for (int Trial = 0; Trial < 500; ++Trial) {
    const Datum *D = randomDatum(R, Factory, 3);
    std::string Written = D->write();
    Result<const Datum *> Back = readDatum(Written, Factory);
    ASSERT_TRUE(Back.ok()) << "trial " << Trial << ": '" << Written
                           << "': " << Back.error().render();
    EXPECT_TRUE(D->equals(*Back)) << "trial " << Trial << ": " << Written;
  }
}

// -- Well-known datums -----------------------------------------------------------

TEST(WellKnownTest, SingletonsAreShared) {
  EXPECT_EQ(wellknown::nil(), wellknown::nil());
  EXPECT_EQ(wellknown::trueDatum(), wellknown::trueDatum());
  EXPECT_EQ(wellknown::fixnum(5), wellknown::fixnum(5));
  EXPECT_TRUE(wellknown::trueDatum()->equals(wellknown::trueDatum()));
}

TEST(WellKnownTest, FixnumCacheCoversSmallRange) {
  EXPECT_EQ(cast<FixnumDatum>(wellknown::fixnum(-16))->value(), -16);
  EXPECT_EQ(cast<FixnumDatum>(wellknown::fixnum(256))->value(), 256);
  EXPECT_EQ(cast<FixnumDatum>(wellknown::fixnum(1 << 20))->value(), 1 << 20);
}

} // namespace
