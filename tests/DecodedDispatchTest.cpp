//===- tests/DecodedDispatchTest.cpp - Pre-decoded dispatch parity ----------===//
///
/// \file
/// The pre-decoded fast loop (vm/Decode.cpp + Machine::runDecoded) against
/// the byte interpreter it replaces: both dispatch strategies must produce
/// identical values, identical trap contexts (kind, faulting pc, opcode),
/// and identical instruction counts; code that does not decode cleanly must
/// fall back to the byte loop and interoperate with decoded callers in the
/// same call stack.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "vm/Prims.h"
#include "vm/Profile.h"
#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::test;
using vm::Op;
using vm::TrapKind;
using vm::Value;

namespace {

/// Appends a little-endian u16 operand.
void emitU16(std::vector<uint8_t> &Code, uint16_t V) {
  Code.push_back(static_cast<uint8_t>(V & 0xff));
  Code.push_back(static_cast<uint8_t>(V >> 8));
}

/// Everything one engine run produces, for cross-mode comparison.
struct RunOutcome {
  Result<Value> R = Result<Value>(Value::nil());
  std::optional<vm::Trap> Trap;
  uint64_t Instructions = 0;
};

struct RunLimits {
  uint64_t Fuel = 50'000'000;
  size_t MaxFrames = 0;
  size_t MaxHeapBytes = 0;
};

/// The four dispatch strategies under comparison: the byte interpreter,
/// the pre-decoded loop one source instruction at a time, the pre-decoded
/// loop with superinstruction fusion, and the native tier (per-block
/// template JIT over the fused loop; on hosts without the tier it runs
/// identically to Fused, which keeps the comparison vacuous-but-true).
enum class Mode { Bytes, Decoded, Fused, Native };

constexpr Mode AllModes[] = {Mode::Bytes, Mode::Decoded, Mode::Fused,
                             Mode::Native};

/// Compiles \p Source (ANF pipeline, verified link) and calls (Fn Arg) on a
/// machine pinned to one dispatch strategy, with a profile attached so the
/// comparison covers instruction counts as well as results.
RunOutcome runWithDispatch(World &W, const std::string &Source, const char *Fn,
                           Value Arg, const RunLimits &Lim, Mode DispatchMode) {
  RunOutcome Out;
  auto P = W.parseAnf(Source);
  if (!P) {
    Out.R = P.takeError();
    return Out;
  }
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(*P);
  vm::Machine M(W.Heap);
  vm::Limits L;
  L.Fuel = Lim.Fuel;
  if (Lim.MaxFrames)
    L.MaxFrames = Lim.MaxFrames;
  L.MaxHeapBytes = Lim.MaxHeapBytes;
  M.setLimits(L);
  M.setDecodedDispatch(DispatchMode != Mode::Bytes);
  M.setFusion(DispatchMode == Mode::Fused || DispatchMode == Mode::Native);
  M.setNativeJit(DispatchMode == Mode::Native);
  vm::Profile Prof;
  M.setProfile(&Prof);
  auto Linked = compiler::linkProgramVerified(M, Globals, CP);
  if (!Linked) {
    Out.R = Linked.takeError();
    return Out;
  }
  Out.R = W.pinned(
      compiler::callGlobal(M, Globals, Symbol::intern(Fn), {{Arg}}));
  Out.Trap = M.lastTrap();
  Out.Instructions = Prof.instructions();
  return Out;
}

// -- Value parity -----------------------------------------------------------

struct ValueCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  int64_t Arg;
  const char *Expected; // datum
};

const ValueCase ValueCases[] = {
    {"fib",
     "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
     "fib", 15, "610"},
    {"tail_loop",
     "(define (count n acc) (if (zero? n) acc (count (- n 1) (+ acc 1))))"
     "(define (go n) (count n 0))",
     "go", 10000, "10000"},
    {"closures",
     "(define (adder k) (lambda (x) (+ x k)))"
     "(define (go n) (+ ((adder 1) n) ((adder 2) n)))",
     "go", 10, "23"},
    {"list_build",
     "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))"
     "(define (go n) (car (iota n)))",
     "go", 64, "64"},
    {"higher_order",
     "(define (twice f x) (f (f x)))"
     "(define (go n) (twice (lambda (x) (* x x)) n))",
     "go", 3, "81"},
};

class ValueParity : public ::testing::TestWithParam<ValueCase> {};

TEST_P(ValueParity, AllDispatchModesAgreeOnValueAndInsnCount) {
  const ValueCase &C = GetParam();
  World W;
  RunOutcome First;
  bool HaveFirst = false;
  for (Mode M : AllModes) {
    RunOutcome Out = runWithDispatch(W, C.Source, C.Fn, W.num(C.Arg), {}, M);
    ASSERT_TRUE(Out.R.ok()) << Out.R.error().render();
    expectValueEq(*Out.R, W.value(C.Expected));
    if (!HaveFirst) {
      First = Out;
      HaveFirst = true;
      EXPECT_GT(First.Instructions, 0u);
      continue;
    }
    expectValueEq(*Out.R, *First.R);
    // Neither pre-decoding nor fusion changes how many source
    // instructions run — fused dispatches charge each constituent.
    EXPECT_EQ(Out.Instructions, First.Instructions);
  }
}

INSTANTIATE_TEST_SUITE_P(Decoded, ValueParity, ::testing::ValuesIn(ValueCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

// -- Trap parity ------------------------------------------------------------

struct TrapCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  int64_t Arg;
  TrapKind Expected;
  RunLimits Lim;
};

const TrapCase TrapCases[] = {
    {"undefined_global",
     "(define (f x) (mystery x))", "f", 1,
     TrapKind::UndefinedGlobal, {}},
    {"non_procedure_application",
     "(define (f x) (x 1))", "f", 5,
     TrapKind::TypeError, {}},
    {"car_of_a_number",
     "(define (f x) (car x))", "f", 5,
     TrapKind::TypeError, {}},
    {"quotient_by_zero",
     "(define (f x) (quotient 10 x))", "f", 0,
     TrapKind::DivideByZero, {}},
    {"divergence_exhausts_fuel",
     "(define (f x) (f x))", "f", 0,
     TrapKind::FuelExhausted, {/*Fuel=*/20'000}},
    {"deep_recursion_overflows_frames",
     "(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1)))))", "f", 100000,
     TrapKind::FrameOverflow, {50'000'000, /*MaxFrames=*/128, 0}},
    {"allocation_exhausts_heap",
     "(define (f n) (if (zero? n) '() (cons n (f (- n 1)))))", "f", 200000,
     TrapKind::HeapExhausted, {50'000'000, 0, /*MaxHeapBytes=*/256 * 1024}},
};

class TrapParity : public ::testing::TestWithParam<TrapCase> {};

TEST_P(TrapParity, AllDispatchModesReportTheSameTrapContext) {
  const TrapCase &C = GetParam();
  World W;
  RunOutcome Bytes =
      runWithDispatch(W, C.Source, C.Fn, W.num(C.Arg), C.Lim, Mode::Bytes);
  ASSERT_FALSE(Bytes.R.ok()) << "byte loop unexpectedly succeeded";
  ASSERT_TRUE(Bytes.Trap.has_value());
  EXPECT_EQ(Bytes.Trap->Kind, C.Expected) << Bytes.R.error().render();

  for (Mode M : {Mode::Decoded, Mode::Fused, Mode::Native}) {
    RunOutcome Fast =
        runWithDispatch(W, C.Source, C.Fn, W.num(C.Arg), C.Lim, M);
    ASSERT_FALSE(Fast.R.ok()) << "fast loop unexpectedly succeeded";
    ASSERT_TRUE(Fast.Trap.has_value());

    // The exact trap context — not just the class — must match: kind,
    // faulting function, byte pc, and raw opcode. Fused dispatches must
    // attribute the fault to the constituent the byte loop would blame.
    EXPECT_EQ(Fast.Trap->Kind, Bytes.Trap->Kind);
    EXPECT_EQ(Fast.Trap->Function, Bytes.Trap->Function);
    EXPECT_EQ(Fast.Trap->PC, Bytes.Trap->PC);
    EXPECT_EQ(Fast.Trap->Opcode, Bytes.Trap->Opcode);
    EXPECT_EQ(Fast.R.error().message(), Bytes.R.error().message());
    EXPECT_EQ(Fast.Instructions, Bytes.Instructions);
  }
}

INSTANTIATE_TEST_SUITE_P(Decoded, TrapParity, ::testing::ValuesIn(TrapCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

// -- Decoder strictness and fallback ----------------------------------------

class DecodedDispatchTest : public ::testing::Test {
protected:
  DecodedDispatchTest() : Store(W.Heap), M(W.Heap) { M.setFuel(1'000'000); }

  const vm::CodeObject *raw(const char *Name, uint32_t Arity,
                            std::vector<uint8_t> Bytes,
                            std::vector<Value> Literals = {}) {
    vm::CodeObject *Code = Store.create(Name, Arity);
    Code->mutableCode() = std::move(Bytes);
    for (Value V : Literals)
      Code->addLiteral(V);
    return Code;
  }

  World W;
  vm::CodeStore Store;
  vm::Machine M;
};

TEST_F(DecodedDispatchTest, DecoderRejectsIrregularStreams) {
  // Each of these must refuse to pre-decode; the cache must remember the
  // refusal (Fallback state) rather than re-attempting.
  const vm::CodeObject *Empty = raw("empty", 0, {});
  EXPECT_EQ(Empty->decoded(), nullptr);
  EXPECT_TRUE(Empty->decodeAttempted());
  EXPECT_EQ(Empty->decoded(), nullptr);

  // Unknown opcode byte.
  EXPECT_EQ(raw("junk", 0, {0xff})->decoded(), nullptr);

  // Truncated operand: Const wants a u16 but only one byte follows.
  EXPECT_EQ(raw("trunc", 0,
                {static_cast<uint8_t>(Op::Const), 0x00})
                ->decoded(),
            nullptr);

  // Const literal index beyond the literal table.
  {
    std::vector<uint8_t> B;
    B.push_back(static_cast<uint8_t>(Op::Const));
    emitU16(B, 3);
    B.push_back(static_cast<uint8_t>(Op::Return));
    EXPECT_EQ(raw("badlit", 0, std::move(B), {Value::fixnum(1)})->decoded(),
              nullptr);
  }

  // Jump target landing inside another instruction's operand bytes.
  {
    std::vector<uint8_t> B;
    B.push_back(static_cast<uint8_t>(Op::Jump));
    emitU16(B, 1); // next pc 3, target 4: inside the Const below
    B.push_back(static_cast<uint8_t>(Op::Const));
    emitU16(B, 0);
    B.push_back(static_cast<uint8_t>(Op::Return));
    EXPECT_EQ(raw("midjump", 0, std::move(B), {Value::fixnum(1)})->decoded(),
              nullptr);
  }

  // Fall-through off the end of the stream (non-terminator last insn).
  {
    std::vector<uint8_t> B;
    B.push_back(static_cast<uint8_t>(Op::Const));
    emitU16(B, 0);
    EXPECT_EQ(raw("falloff", 0, std::move(B), {Value::fixnum(1)})->decoded(),
              nullptr);
  }
}

TEST_F(DecodedDispatchTest, WellFormedStreamsDecodeWithResolvedTargets) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const)); // pc 0 -> index 0
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::JumpIfFalse)); // pc 3 -> index 1
  emitU16(B, 4);                                      // target pc 10
  B.push_back(static_cast<uint8_t>(Op::Const)); // pc 6 -> index 2
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Return)); // pc 9 -> index 3
  B.push_back(static_cast<uint8_t>(Op::Const));  // pc 10 -> index 4
  emitU16(B, 1);
  B.push_back(static_cast<uint8_t>(Op::Return)); // pc 13 -> index 5

  const vm::CodeObject *Code = raw("wf", 0, std::move(B),
                                   {Value::boolean(false), Value::fixnum(9)});
  const vm::DecodedStream *DS = Code->decoded();
  ASSERT_NE(DS, nullptr);
  ASSERT_EQ(DS->Insns.size(), 6u);
  EXPECT_EQ(DS->Insns[1].Opcode, Op::JumpIfFalse);
  EXPECT_EQ(DS->Insns[1].Target, 4); // resolved to a decoded index
  EXPECT_EQ(DS->Insns[1].NextPC, 6u);
  EXPECT_EQ(DS->indexOf(10), 4u);
  // The cache hands back the same stream on every query.
  EXPECT_EQ(Code->decoded(), DS);

  // And the machine runs it to the jump-taken answer.
  Result<Value> R = M.call(M.makeProcedure(Code), {});
  ASSERT_TRUE(R.ok()) << R.error().render();
  expectValueEq(*R, Value::fixnum(9));
}

TEST_F(DecodedDispatchTest, FallbackCalleeInteroperatesWithDecodedCaller) {
  // The callee is perfectly runnable but carries a junk byte after its
  // Return, so linear pre-decode refuses it and it must execute on the
  // byte loop — while its caller runs on the decoded fast path.
  std::vector<uint8_t> CB;
  CB.push_back(static_cast<uint8_t>(Op::LocalRef));
  emitU16(CB, 0);
  CB.push_back(static_cast<uint8_t>(Op::Return));
  CB.push_back(0xff); // unreachable junk: decode-fail, run-fine
  const vm::CodeObject *Callee = raw("callee", 1, std::move(CB));
  ASSERT_EQ(Callee->decoded(), nullptr);

  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const)); // push callee closure
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Const)); // push the argument
  emitU16(B, 1);
  B.push_back(static_cast<uint8_t>(Op::Call));
  B.push_back(1);
  B.push_back(static_cast<uint8_t>(Op::Return));
  const vm::CodeObject *Caller =
      raw("caller", 0, std::move(B),
          {M.makeProcedure(Callee), Value::fixnum(42)});
  ASSERT_NE(Caller->decoded(), nullptr);

  vm::Profile Prof;
  M.setProfile(&Prof);
  Result<Value> R = M.call(M.makeProcedure(Caller), {});
  M.setProfile(nullptr);
  ASSERT_TRUE(R.ok()) << R.error().render();
  expectValueEq(*R, Value::fixnum(42));

  // Both halves of the mixed-mode run are visible in one profile:
  // caller Const,Const,Call,Return on the fast loop; callee
  // LocalRef,Return on the byte loop.
  EXPECT_EQ(Prof.instructions(), 6u);
  EXPECT_EQ(Prof.OpCount[static_cast<size_t>(Op::Const)], 2u);
  EXPECT_EQ(Prof.OpCount[static_cast<size_t>(Op::Call)], 1u);
  EXPECT_EQ(Prof.OpCount[static_cast<size_t>(Op::LocalRef)], 1u);
  EXPECT_EQ(Prof.OpCount[static_cast<size_t>(Op::Return)], 2u);
  EXPECT_EQ(Prof.Calls, 1u);
  EXPECT_EQ(Prof.Traps, 0u);

  // The report names the opcodes it counted.
  std::string Report = Prof.report();
  EXPECT_NE(Report.find("Const"), std::string::npos);
  EXPECT_NE(Report.find("Return"), std::string::npos);
}

TEST_F(DecodedDispatchTest, FallbackCallerCanCallDecodedCallee) {
  // The inverse mixing: a byte-loop caller (junk tail) invoking a cleanly
  // decodable callee, round-tripping through both dispatch loops.
  std::vector<uint8_t> CB;
  CB.push_back(static_cast<uint8_t>(Op::LocalRef));
  emitU16(CB, 0);
  CB.push_back(static_cast<uint8_t>(Op::Prim));
  CB.push_back(static_cast<uint8_t>(PrimOp::ZeroP));
  CB.push_back(static_cast<uint8_t>(Op::Return));
  const vm::CodeObject *Callee = raw("callee", 1, std::move(CB));
  ASSERT_NE(Callee->decoded(), nullptr);

  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 1);
  B.push_back(static_cast<uint8_t>(Op::Call));
  B.push_back(1);
  B.push_back(static_cast<uint8_t>(Op::Return));
  B.push_back(0xff); // decode-fail tail
  const vm::CodeObject *Caller =
      raw("caller", 0, std::move(B),
          {M.makeProcedure(Callee), Value::fixnum(0)});
  ASSERT_EQ(Caller->decoded(), nullptr);

  Result<Value> R = M.call(M.makeProcedure(Caller), {});
  ASSERT_TRUE(R.ok()) << R.error().render();
  expectValueEq(*R, Value::boolean(true));
}

TEST_F(DecodedDispatchTest, ProfilePhaseTimersAccumulate) {
  // Timing is wall-clock and can legitimately round to zero for tiny
  // runs; what must hold is that the exec timer is engaged by call() and
  // that reset() clears everything.
  vm::Profile Prof;
  Prof.OpCount[0] = 7;
  Prof.Calls = 2;
  Prof.ExecNanos = 5;
  Prof.reset();
  EXPECT_EQ(Prof.instructions(), 0u);
  EXPECT_EQ(Prof.Calls, 0u);
  EXPECT_EQ(Prof.ExecNanos, 0u);

  M.setProfile(&Prof);
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R =
      M.call(M.makeProcedure(raw("tiny", 0, std::move(B),
                                 {Value::fixnum(1)})),
             {});
  M.setProfile(nullptr);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Prof.Calls, 1u);
  EXPECT_EQ(Prof.instructions(), 2u);
}

// -- Superinstruction fusion ------------------------------------------------

TEST_F(DecodedDispatchTest, FusionSelectsStraightLineIdioms) {
  // LocalRef 0; LocalRef 0; Prim Add; Return — the widest idiom wins
  // (Local+Local+Prim), its constituents keep their entries, and the
  // plain view is untouched.
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::LocalRef));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::LocalRef));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Prim));
  B.push_back(static_cast<uint8_t>(PrimOp::Add));
  B.push_back(static_cast<uint8_t>(Op::Return));
  const vm::CodeObject *Code = raw("dbl", 1, std::move(B));
  const vm::DecodedStream *DS = Code->decoded();
  ASSERT_NE(DS, nullptr);
  ASSERT_EQ(DS->Insns.size(), 4u);
  ASSERT_EQ(DS->Fused.size(), 4u);
  EXPECT_EQ(DS->Fused[0].Opcode, Op::FuseLocalLocalPrim);
  EXPECT_EQ(DS->Fused[0].SrcOp, Op::LocalRef);
  EXPECT_EQ(DS->Fused[1].Opcode, Op::LocalRef); // constituent untouched
  EXPECT_EQ(DS->Fused[2].Opcode, Op::Prim);
  EXPECT_EQ(DS->Fused[3].Opcode, Op::Return);
  EXPECT_EQ(DS->Insns[0].Opcode, Op::LocalRef); // plain view untouched

  // Fused and unfused execution agree on the value, the per-opcode
  // profile, and the instruction count; only the fused run reports a
  // fused dispatch. FusedCount is interpreter dispatch state the native
  // tier bypasses, so pin it off for this comparison.
  M.setNativeJit(false);
  vm::Profile FusedProf, PlainProf;
  M.setFusion(true);
  M.setProfile(&FusedProf);
  Result<Value> RF =
      M.call(M.makeProcedure(Code), {{Value::fixnum(21)}});
  M.setFusion(false);
  M.setProfile(&PlainProf);
  Result<Value> RP =
      M.call(M.makeProcedure(Code), {{Value::fixnum(21)}});
  M.setProfile(nullptr);
  ASSERT_TRUE(RF.ok()) << RF.error().render();
  ASSERT_TRUE(RP.ok()) << RP.error().render();
  expectValueEq(*RF, Value::fixnum(42));
  expectValueEq(*RP, *RF);
  EXPECT_EQ(FusedProf.instructions(), PlainProf.instructions());
  EXPECT_EQ(FusedProf.OpCount, PlainProf.OpCount);
  EXPECT_EQ(FusedProf.fusedExecutions(), 1u);
  EXPECT_EQ(PlainProf.fusedExecutions(), 0u);
  EXPECT_EQ(
      FusedProf.FusedCount[static_cast<size_t>(Op::FuseLocalLocalPrim) -
                           vm::NumOpcodes],
      1u);
}

TEST_F(DecodedDispatchTest, FusionStopsAtJumpTargets) {
  // The Prim below is a branch target: the LocalRef before it must not
  // fuse across the basic-block boundary (the incoming edge would land
  // mid-idiom), while the Prim itself may still head its own idiom.
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const)); // idx 0, pc 0
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::JumpIfFalse)); // idx 1, pc 3 -> pc 9
  emitU16(B, 3);
  B.push_back(static_cast<uint8_t>(Op::LocalRef)); // idx 2, pc 6
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Prim)); // idx 3, pc 9: jump target
  B.push_back(static_cast<uint8_t>(PrimOp::ZeroP));
  B.push_back(static_cast<uint8_t>(Op::Return)); // idx 4, pc 11
  const vm::CodeObject *Code =
      raw("bb", 1, std::move(B), {Value::boolean(true)});
  const vm::DecodedStream *DS = Code->decoded();
  ASSERT_NE(DS, nullptr);
  ASSERT_EQ(DS->Fused.size(), 5u);
  EXPECT_EQ(DS->Fused[2].Opcode, Op::LocalRef); // no fuse across the edge
  EXPECT_EQ(DS->Fused[3].Opcode, Op::FusePrimReturn); // entry may head one

  M.setFusion(true);
  Result<Value> R = M.call(M.makeProcedure(Code), {{Value::fixnum(0)}});
  ASSERT_TRUE(R.ok()) << R.error().render();
  expectValueEq(*R, Value::boolean(true));
}

TEST_F(DecodedDispatchTest, DigramProfileCountsOpcodePairs) {
  // Digrams tune the superinstruction set, which the native tier
  // bypasses — PairCount is documented as interpreter-only, so this
  // test pins the tier off (OpCount, by contrast, is maintained in
  // native code and asserted with the tier on elsewhere in this file).
  M.setNativeJit(false);
  vm::Profile Prof;
  M.setProfile(&Prof);
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R = M.call(
      M.makeProcedure(raw("pair", 0, std::move(B), {Value::fixnum(1)})), {});
  M.setProfile(nullptr);
  ASSERT_TRUE(R.ok());

  // Start-of-run sentinel -> Const, then Const -> Return.
  EXPECT_EQ(Prof.PairCount[vm::Profile::PairStart * vm::NumOpcodes +
                           static_cast<size_t>(Op::Const)],
            1u);
  EXPECT_EQ(Prof.PairCount[static_cast<size_t>(Op::Const) * vm::NumOpcodes +
                           static_cast<size_t>(Op::Return)],
            1u);
  auto Pairs = Prof.topPairs(4);
  ASSERT_EQ(Pairs.size(), 1u); // the sentinel row is not a pair
  EXPECT_EQ(Pairs[0].Prev, Op::Const);
  EXPECT_EQ(Pairs[0].Cur, Op::Return);
  EXPECT_EQ(Pairs[0].Count, 1u);
  std::string Report = Prof.report();
  EXPECT_NE(Report.find("hottest opcode pairs"), std::string::npos);
  EXPECT_NE(Report.find("Const+Return"), std::string::npos);
}

} // namespace
