//===- tests/StoreTestUtil.h - Persistent-store test helpers ----*- C++ -*-===//
///
/// \file
/// Shared scaffolding for tests that exercise pgg/DiskStore: a
/// self-cleaning scratch store directory under TMPDIR, and raw file
/// slurp/spit for corrupting committed entries in place.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_TESTS_STORETESTUTIL_H
#define PECOMP_TESTS_STORETESTUTIL_H

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace pecomp {
namespace test {

/// A scratch store directory under TMPDIR, removed on destruction.
struct TempStoreDir {
  std::string Path;
  TempStoreDir() {
    const char *T = getenv("TMPDIR");
    std::string Tpl = std::string(T && *T ? T : "/tmp") +
                      "/pecomp-store-test-XXXXXX";
    std::vector<char> Buf(Tpl.begin(), Tpl.end());
    Buf.push_back('\0');
    EXPECT_NE(mkdtemp(Buf.data()), nullptr);
    Path = Buf.data();
  }
  ~TempStoreDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

inline std::vector<uint8_t> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

inline void spit(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

} // namespace test
} // namespace pecomp

#endif // PECOMP_TESTS_STORETESTUTIL_H
