//===- tests/PipelineSmokeTest.cpp - End-to-end pipeline smoke tests -------===//
///
/// \file
/// Differential tests over small programs: the reference interpreter, the
/// stock compiler, and the ANF compiler must agree (DESIGN.md invariant
/// "semantics preservation").
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct Case {
  const char *Name;
  const char *Source;
  const char *Fn;
  std::vector<int64_t> Args;
  const char *Expected; // datum text
};

const Case Cases[] = {
    {"factorial",
     "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))", "fact", {10},
     "3628800"},
    {"fib",
     "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
     "fib", {15}, "610"},
    {"even-odd",
     "(define (even? n) (if (zero? n) #t (odd? (- n 1))))"
     "(define (odd? n) (if (zero? n) #f (even? (- n 1))))",
     "even?", {100}, "#t"},
    {"tail-loop",
     "(define (loop i acc) (if (zero? i) acc (loop (- i 1) (+ acc 2))))",
     "loop", {100000, 0}, "200000"},
    {"iota-sum",
     "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))"
     "(define (sum xs) (if (null? xs) 0 (+ (car xs) (sum (cdr xs)))))"
     "(define (go n) (sum (iota n)))",
     "go", {100}, "5050"},
    {"closures",
     "(define (adder n) (lambda (x) (+ x n)))"
     "(define (go a b) (let ((f (adder a)) (g (adder b))) (+ (f 10) (g 20))))",
     "go", {1, 2}, "33"},
    {"higher-order",
     "(define (compose f g) (lambda (x) (f (g x))))"
     "(define (go n) ((compose (lambda (x) (* x 2)) (lambda (x) (+ x 1))) n))",
     "go", {5}, "12"},
    {"let-star-and-cond",
     "(define (classify n)"
     "  (cond ((< n 0) 'negative) ((= n 0) 'zero) (else 'positive)))"
     "(define (go a) (let* ((x (classify a)) (y (if (eq? x 'zero) 1 2)))"
     "  (cons x y)))",
     "go", {0}, "(zero . 1)"},
    {"and-or-when",
     "(define (go n) (if (and (> n 0) (or (= n 5) (> n 10))) 'big 'small))",
     "go", {12}, "big"},
    {"letrec-mutual",
     "(define (go n)"
     "  (letrec ((ev? (lambda (k) (if (zero? k) #t (od? (- k 1)))))"
     "           (od? (lambda (k) (if (zero? k) #f (ev? (- k 1))))))"
     "    (ev? n)))",
     "go", {8}, "#t"},
    {"set-boxes",
     "(define (go n)"
     "  (let ((counter 0))"
     "    (let ((bump (lambda () (set! counter (+ counter 1)))))"
     "      (begin (bump) (bump) (when (> n 0) (bump)) counter))))",
     "go", {1}, "3"},
    {"quoted-data",
     "(define (go n) (cons n '(a (b 2) \"s\" #\\x #t ())))", "go", {7},
     "(7 a (b 2) \"s\" #\\x #t ())"},
    {"deep-lists",
     "(define (rev xs acc) (if (null? xs) acc"
     "  (rev (cdr xs) (cons (car xs) acc))))"
     "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))"
     "(define (go n) (rev (iota n) '()))",
     "go", {5}, "(1 2 3 4 5)"},
    {"arith-ops",
     "(define (go a b) (list (+ a b) (- a b) (* a b) (quotient a b)"
     "  (remainder a b) (< a b) (>= a b) (equal? a b)))",
     "go", {17, 5}, "(22 12 85 3 2 #f #t #f)"},
};

class PipelineCase : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineCase, EvalStockAnfAgree) {
  const Case &C = GetParam();
  World W;
  PECOMP_UNWRAP(P, W.parse(C.Source));

  std::vector<vm::Value> Args;
  for (int64_t A : C.Args)
    Args.push_back(W.num(A));
  vm::Value Expected = W.value(C.Expected);

  PECOMP_UNWRAP(EvalResult, W.evalCall(P, C.Fn, Args));
  expectValueEq(EvalResult, Expected);

  PECOMP_UNWRAP(StockResult, W.runStock(P, C.Fn, Args));
  expectValueEq(StockResult, Expected);

  PECOMP_UNWRAP(AnfResult, W.runAnf(P, C.Fn, Args));
  expectValueEq(AnfResult, Expected);
}

INSTANTIATE_TEST_SUITE_P(Pipeline, PipelineCase, ::testing::ValuesIn(Cases),
                         [](const auto &Info) {
                           std::string Name = Info.param.Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(PipelineErrors, RuntimeTypeErrorSurfaces) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (go n) (car n))"));
  Result<vm::Value> R = W.runStock(P, "go", {W.num(1)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("expected a pair"), std::string::npos);
}

TEST(PipelineErrors, UserErrorPrimitive) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (go n) (error \"boom\"))"));
  Result<vm::Value> R = W.runAnf(P, "go", {W.num(1)});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("boom"), std::string::npos);
}

TEST(PipelineErrors, DivisionByZero) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (go n) (quotient 1 n))"));
  Result<vm::Value> R = W.evalCall(P, "go", {W.num(0)});
  ASSERT_FALSE(R.ok());
}

TEST(PipelineTailCalls, ConstantStackDepth) {
  // A million tail-recursive iterations must complete on the VM.
  World W;
  PECOMP_UNWRAP(
      P, W.parse("(define (loop i) (if (zero? i) 'done (loop (- i 1))))"));
  PECOMP_UNWRAP(R, W.runAnf(P, "loop", {W.num(1000000)}));
  expectValueEq(R, W.value("done"));
}

} // namespace
