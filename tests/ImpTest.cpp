//===- tests/ImpTest.cpp - IMP interpreter specialization -------------------===//
///
/// \file
/// Compiling the imperative while-language by specialization, plus the
/// GeneratedCompiler facade (the paper's "automatic construction of true
/// compilers").
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pgg/CompilerGenerator.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct ImpCase {
  const char *Name;
  const char *Program;
  std::vector<std::pair<const char *, int64_t>> ArgsAndResults;
};

std::vector<ImpCase> impCases() {
  return {
      {"straight_line",
       "((x) () ((assign x (op2 + (var x) (const 1)))) (var x))",
       {{"(41)", 42}, {"(-1)", 0}}},
      {"countdown",
       "((n) (acc)"
       " ((assign acc (const 0))"
       "  (while (op2 > (var n) (const 0))"
       "    ((assign acc (op2 + (var acc) (var n)))"
       "     (assign n (op2 - (var n) (const 1))))))"
       " (var acc))",
       {{"(5)", 15}, {"(0)", 0}, {"(100)", 5050}}},
      {"branching",
       "((x) (r)"
       " ((if (op2 < (var x) (const 0))"
       "      ((assign r (op2 - (const 0) (var x))))"
       "      ((assign r (var x)))))"
       " (var r))",
       {{"(-7)", 7}, {"(7)", 7}, {"(0)", 0}}},
      {"nested_loops",
       "((n) (i j acc)"
       " ((assign i (const 0))"
       "  (while (op2 < (var i) (var n))"
       "    ((assign j (const 0))"
       "     (while (op2 < (var j) (var n))"
       "       ((assign acc (op2 + (var acc) (const 1)))"
       "        (assign j (op2 + (var j) (const 1)))))"
       "     (assign i (op2 + (var i) (const 1))))))"
       " (var acc))",
       {{"(4)", 16}, {"(0)", 0}, {"(7)", 49}}},
      {"sample_program", "", {}}, // resolved to impSampleProgram() below
  };
}

class ImpSweep : public ::testing::TestWithParam<ImpCase> {};

TEST_P(ImpSweep, CompiledAgreesWithInterpreted) {
  const ImpCase &C = GetParam();
  World W;
  std::string ProgramText = std::string(C.Name) == "sample_program"
                                ? std::string(workloads::impSampleProgram())
                                : C.Program;
  vm::Value Program = W.value(ProgramText);

  PECOMP_UNWRAP(CC, pgg::GeneratedCompiler::create(
                        W.Heap, workloads::impInterpreter(), "imp-run"));
  PECOMP_UNWRAP(Unit, CC->compile(Program));
  vm::Machine M(W.Heap);
  CC->link(M, Unit.Module);

  PECOMP_UNWRAP(Interp, W.parse(workloads::impInterpreter()));

  auto Cases = C.ArgsAndResults;
  if (Cases.empty()) // the sample program: check against the oracle only
    Cases = {{"(12 18 5)", 726}, {"(9 6 3)", 20}, {"(1 1 0)", 1}};

  for (const auto &[Args, Expected] : Cases) {
    vm::Value In = W.value(Args);
    PECOMP_UNWRAP(Direct, W.evalCall(Interp, "imp-run", {Program, In}));
    expectValueEq(Direct, W.num(Expected));
    PECOMP_UNWRAP(R, W.pinned(compiler::callGlobal(M, CC->globals(),
                                                   Unit.Entry, {{In}})));
    expectValueEq(R, W.num(Expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Imp, ImpSweep, ::testing::ValuesIn(impCases()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(GeneratedCompilerTest, CompilesManyProgramsIntoOneMachine) {
  // The point of globally fresh residual names: several compiled units
  // coexist in one machine without clobbering each other's globals.
  World W;
  PECOMP_UNWRAP(CC, pgg::GeneratedCompiler::create(
                        W.Heap, workloads::impInterpreter(), "imp-run"));

  vm::Value Inc = W.value(
      "((x) () ((assign x (op2 + (var x) (const 1)))) (var x))");
  vm::Value Dbl = W.value(
      "((x) () ((assign x (op2 * (var x) (const 2)))) (var x))");
  PECOMP_UNWRAP(UnitInc, CC->compile(Inc));
  PECOMP_UNWRAP(UnitDbl, CC->compile(Dbl));
  EXPECT_NE(UnitInc.Entry, UnitDbl.Entry);

  vm::Machine M(W.Heap);
  CC->link(M, UnitInc.Module);
  CC->link(M, UnitDbl.Module);

  vm::Value In = W.value("(10)");
  PECOMP_UNWRAP(A, W.pinned(compiler::callGlobal(M, CC->globals(),
                                                 UnitInc.Entry, {{In}})));
  expectValueEq(A, W.num(11));
  PECOMP_UNWRAP(B, W.pinned(compiler::callGlobal(M, CC->globals(),
                                                 UnitDbl.Entry, {{In}})));
  expectValueEq(B, W.num(20));
  // The first unit still works after linking the second.
  PECOMP_UNWRAP(A2, W.pinned(compiler::callGlobal(M, CC->globals(),
                                                  UnitInc.Entry, {{In}})));
  expectValueEq(A2, W.num(11));
}

TEST(GeneratedCompilerTest, RecompilationIsStructurallyStable) {
  // Compiling the same program value twice yields the same shape (same
  // number of residual functions, same code sizes and literals) and the
  // same behaviour. Exact bytes differ only in global-slot numbers, since
  // both units share one global table under fresh names.
  World W;
  PECOMP_UNWRAP(CC, pgg::GeneratedCompiler::create(
                        W.Heap, workloads::impInterpreter(), "imp-run"));
  vm::Value P = W.value(
      "((x) (r) ((while (op2 > (var x) (const 0))"
      " ((assign r (op2 + (var r) (var x)))"
      "  (assign x (op2 - (var x) (const 1)))))) (var r))");
  PECOMP_UNWRAP(U1, CC->compile(P));
  PECOMP_UNWRAP(U2, CC->compile(P));
  ASSERT_EQ(U1.Module.Defs.size(), U2.Module.Defs.size());
  for (size_t I = 0; I != U1.Module.Defs.size(); ++I) {
    EXPECT_EQ(U1.Module.Defs[I].second->code().size(),
              U2.Module.Defs[I].second->code().size());
    EXPECT_EQ(U1.Module.Defs[I].second->literals().size(),
              U2.Module.Defs[I].second->literals().size());
  }
  vm::Machine M(W.Heap);
  CC->link(M, U1.Module);
  CC->link(M, U2.Module);
  vm::Value In = W.value("(6)");
  PECOMP_UNWRAP(A, W.pinned(compiler::callGlobal(M, CC->globals(),
                                                 U1.Entry, {{In}})));
  PECOMP_UNWRAP(B, W.pinned(compiler::callGlobal(M, CC->globals(),
                                                 U2.Entry, {{In}})));
  expectValueEq(A, B);
  expectValueEq(A, W.num(21));
}

TEST(ImpStructure, WhileLoopsBecomeResidualFunctions) {
  World W;
  vm::Value Program = W.value(std::string(workloads::impSampleProgram()));
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::impInterpreter(), "imp-run",
                         "SD"));
  std::optional<vm::Value> Args[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  // Three while loops in the sample: three imp-while specializations.
  size_t WhileFns = 0;
  for (const Definition &D : Res.Residual.Defs)
    if (D.Name.str().find("imp-while") == 0)
      ++WhileFns;
  EXPECT_EQ(WhileFns, 3u) << Res.Residual.print();
}

} // namespace
