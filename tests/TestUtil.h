//===- tests/TestUtil.h - Shared test fixtures ------------------*- C++ -*-===//
///
/// \file
/// One-stop world for tests: heap, factories, front end, both compilers,
/// the reference interpreter, and the PGG, with ASSERT-style unwrapping
/// of Result values.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_TESTS_TESTUTIL_H
#define PECOMP_TESTS_TESTUTIL_H

#include "compiler/AnfCompiler.h"
#include "compiler/StockCompiler.h"
#include "eval/Interp.h"
#include "frontend/AnfConvert.h"
#include "frontend/Pipeline.h"
#include "pgg/Pgg.h"
#include "sexp/Reader.h"
#include "vm/Convert.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

namespace pecomp {
namespace test {

/// Unwraps a Result, failing the test with the error message otherwise.
#define PECOMP_UNWRAP(Var, ResultExpr)                                        \
  auto Var##Result = (ResultExpr);                                            \
  ASSERT_TRUE(Var##Result.ok()) << Var##Result.error().render();              \
  auto &Var = *Var##Result

/// A self-contained universe for one test.
class World {
public:
  World() : Datums(AstArena), Exprs(AstArena) {}

  vm::Heap Heap;
  Arena AstArena;
  DatumFactory Datums;
  ExprFactory Exprs;

  /// Reads one datum from text and converts it to a runtime value. The
  /// value is pinned: tests hold values in C++ locals across VM runs,
  /// which the collector cannot see.
  vm::Value value(std::string_view Text) {
    Result<const Datum *> D = readDatum(Text, Datums);
    EXPECT_TRUE(D.ok()) << (D.ok() ? "" : D.error().render());
    vm::Value V = vm::valueFromDatum(Heap, *D);
    Heap.pin(V);
    return V;
  }

  vm::Value num(int64_t N) { return vm::Value::fixnum(N); }

  /// Front end: text to pure Core Scheme.
  Result<Program> parse(std::string_view Text) {
    return frontendProgram(Text, Exprs, Datums);
  }

  /// Front end + ANF conversion.
  Result<Program> parseAnf(std::string_view Text) {
    return anfProgram(Text, Exprs, Datums);
  }

  /// Pins a result value so the test may hold it in a C++ local across
  /// further allocations (e.g. while building the expected value).
  Result<vm::Value> pinned(Result<vm::Value> R) {
    if (R.ok())
      Heap.pin(*R);
    return R;
  }

  /// Runs (Fn Args...) under the reference interpreter.
  Result<vm::Value> evalCall(const Program &P, std::string_view Fn,
                             std::vector<vm::Value> Args) {
    eval::Interp I(Heap, P);
    return pinned(I.callFunction(Symbol::intern(Fn), Args));
  }

  /// Compiles with the stock compiler and runs (Fn Args...) on the VM.
  Result<vm::Value> runStock(const Program &P, std::string_view Fn,
                             std::vector<vm::Value> Args) {
    vm::CodeStore Store(Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::StockCompiler SC(Comp);
    compiler::CompiledProgram CP = SC.compileProgram(P);
    vm::Machine M(Heap);
    M.setFuel(50'000'000);
    compiler::linkProgram(M, Globals, CP);
    return pinned(compiler::callGlobal(M, Globals, Symbol::intern(Fn), Args));
  }

  /// ANF-converts, compiles with the ANF compiler, runs on the VM.
  Result<vm::Value> runAnf(const Program &P, std::string_view Fn,
                           std::vector<vm::Value> Args) {
    Program Anf = anfConvert(P, Exprs);
    vm::CodeStore Store(Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::AnfCompiler AC(Comp);
    compiler::CompiledProgram CP = AC.compileProgram(Anf);
    vm::Machine M(Heap);
    M.setFuel(50'000'000);
    compiler::linkProgram(M, Globals, CP);
    return pinned(compiler::callGlobal(M, Globals, Symbol::intern(Fn), Args));
  }

  /// Runs a compiled program on a fresh machine.
  Result<vm::Value> runCompiled(vm::GlobalTable &Globals,
                                const compiler::CompiledProgram &CP,
                                Symbol Fn, std::vector<vm::Value> Args) {
    vm::Machine M(Heap);
    M.setFuel(50'000'000);
    compiler::linkProgram(M, Globals, CP);
    return pinned(compiler::callGlobal(M, Globals, Fn, Args));
  }
};

/// Expects two runtime values to be structurally equal.
inline void expectValueEq(vm::Value A, vm::Value B) {
  EXPECT_TRUE(vm::valueEquals(A, B))
      << "  left: " << vm::valueToString(A)
      << "\n right: " << vm::valueToString(B);
}

} // namespace test
} // namespace pecomp

#endif // PECOMP_TESTS_TESTUTIL_H
