//===- tests/GcStressTest.cpp - GC safety under stress ----------------------===//
///
/// \file
/// The DESIGN.md GC invariant: collecting at every allocation must not
/// change any observable result — across the evaluator, both compilers,
/// the specializer, and the fused path.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct StressCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  const char *Arg;      // datum
  const char *Expected; // datum
};

const StressCase StressCases[] = {
    {"list_building",
     "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))"
     "(define (go n) (iota n))",
     "go", "20", "(20 19 18 17 16 15 14 13 12 11 10 9 8 7 6 5 4 3 2 1)"},
    {"closure_churn",
     "(define (make n) (lambda (x) (+ x n)))"
     "(define (go n) (if (zero? n) 0 (+ ((make n) 1) (go (- n 1)))))",
     "go", "30", "495"},
    {"boxes",
     "(define (go n)"
     "  (let ((acc 0))"
     "    (letrec ((loop (lambda (i)"
     "        (if (zero? i) acc"
     "            (begin (set! acc (+ acc i)) (loop (- i 1)))))))"
     "      (loop n))))",
     "go", "50", "1275"},
};

class GcStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(GcStress, EvalUnderStress) {
  const StressCase &C = GetParam();
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(P, W.parse(C.Source));
  PECOMP_UNWRAP(R, W.evalCall(P, C.Fn, {W.value(C.Arg)}));
  expectValueEq(R, W.value(C.Expected));
  EXPECT_GT(W.Heap.totalCollections(), 0u);
}

TEST_P(GcStress, CompiledUnderStress) {
  const StressCase &C = GetParam();
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(P, W.parse(C.Source));
  PECOMP_UNWRAP(R, W.runStock(P, C.Fn, {W.value(C.Arg)}));
  expectValueEq(R, W.value(C.Expected));
  PECOMP_UNWRAP(R2, W.runAnf(P, C.Fn, {W.value(C.Arg)}));
  expectValueEq(R2, W.value(C.Expected));
}

INSTANTIATE_TEST_SUITE_P(Gc, GcStress, ::testing::ValuesIn(StressCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(GcStressSpec, SpecializationUnderStress) {
  // The specializer allocates static values while residual code is being
  // generated; stress collections must not disturb either.
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::dotProductProgram(), "dot",
                         "SD"));
  std::optional<vm::Value> Args[] = {W.value("(1 2 3 4)"), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(),
                              {W.value("(10 20 30 40)")}));
  expectValueEq(R, W.num(300));
  EXPECT_GT(W.Heap.totalCollections(), 0u);
}

TEST(GcStressSpec, FusedPathUnderStress) {
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::dotProductProgram(), "dot",
                         "SD"));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> Args[] = {W.value("(5 0 5)"), std::nullopt};
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, Args));
  PECOMP_UNWRAP(R, W.runCompiled(Globals, Obj.Residual, Obj.Entry,
                                 {W.value("(1 2 3)")}));
  expectValueEq(R, W.num(20));
}

// -- Deterministic OOM injection over the RTCG pipeline -----------------------------------
//
// The trust problem of run-time code generation includes resource faults:
// the generating extension, the code generator, and the linker must
// surface heap exhaustion mid-generation as an Error — never crash, never
// hand out a truncated program as if it were whole.

/// One full fused-path run (specialize → object code → link → call) with
/// the heap set to fault at absolute allocation ordinal \p FailAt.
/// Returns the final result; every stage's error is funneled through.
Result<vm::Value> fusedRunWithInjectedOom(uint64_t FailAt) {
  World W;
  vm::FaultPlan Plan;
  Plan.FailAtAllocation = FailAt;
  W.Heap.setFaultPlan(Plan);

  auto Gen = pgg::GeneratingExtension::create(
      W.Heap, workloads::dotProductProgram(), "dot", "SD");
  if (!Gen)
    return Gen.takeError();
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> Args[] = {W.value("(5 0 5)"), std::nullopt};
  auto Obj = (*Gen)->generateObject(Comp, Args);
  if (!Obj)
    return Obj.takeError();
  vm::Machine M(W.Heap);
  M.setFuel(50'000'000);
  auto Linked = compiler::linkProgramVerified(M, Globals, Obj->Residual);
  if (!Linked)
    return Linked.takeError();
  return compiler::callGlobal(M, Globals, Obj->Entry, {{W.value("(1 2 3)")}});
}

TEST(GcStressFault, OomAtEveryEarlyAllocationIsAnErrorNeverACrash) {
  // Sweep the fault ordinal across the pipeline's early life, plus a
  // spread of later points. Each run must either complete with the right
  // value or return an Error whose class is HeapExhausted.
  size_t Completed = 0, Faulted = 0;
  std::vector<uint64_t> Ordinals;
  for (uint64_t N = 1; N <= 40; ++N)
    Ordinals.push_back(N);
  for (uint64_t N : {50u, 75u, 100u, 150u, 250u, 500u, 1000u, 2500u, 5000u})
    Ordinals.push_back(N);
  for (uint64_t N : Ordinals) {
    Result<vm::Value> R = fusedRunWithInjectedOom(N);
    if (R.ok()) {
      expectValueEq(*R, vm::Value::fixnum(20));
      ++Completed;
    } else {
      EXPECT_EQ(vm::trapKindOf(R.error()), vm::TrapKind::HeapExhausted)
          << "ordinal " << N << ": " << R.error().render();
      ++Faulted;
    }
  }
  // The sweep must actually exercise both outcomes: early ordinals fault
  // mid-generation, ordinals past the pipeline's total allocation count
  // complete untouched.
  EXPECT_GT(Faulted, 0u);
  EXPECT_GT(Completed, 0u);
}

TEST(GcStressFault, SourcePathSurfacesMidSpecializationOom) {
  // The ordinary-PE path (residual source) reports the same class. The
  // workload builds a 500-element list entirely statically, so the
  // specializer itself must perform hundreds of allocations; arming the
  // plan right before generateSource guarantees the fault lands inside
  // specialization proper.
  World W;
  auto Gen = pgg::GeneratingExtension::create(
      W.Heap,
      "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))",
      "build", "S");
  ASSERT_TRUE(Gen.ok()) << Gen.error().render();
  std::optional<vm::Value> Args[] = {W.num(500)};
  vm::FaultPlan Plan;
  Plan.FailAtAllocation = W.Heap.totalAllocations() + 100;
  W.Heap.setFaultPlan(Plan);
  auto Res = (*Gen)->generateSource(Args);
  ASSERT_FALSE(Res.ok()) << "expected the injected fault to surface";
  EXPECT_EQ(vm::trapKindOf(Res.error()), vm::TrapKind::HeapExhausted)
      << Res.error().render();
}

TEST(GcStressSpec, MixwellEndToEndUnderStress) {
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "SD"));
  vm::Value Program =
      W.value(std::string(workloads::mixwellSampleProgram()));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> Args[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, Args));
  PECOMP_UNWRAP(R, W.runCompiled(Globals, Obj.Residual, Obj.Entry,
                                 {W.value("(4 (9 5))")}));
  expectValueEq(R, W.value("(38 3)"));
  EXPECT_GT(W.Heap.totalCollections(), 100u);
}

} // namespace
