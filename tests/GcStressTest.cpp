//===- tests/GcStressTest.cpp - GC safety under stress ----------------------===//
///
/// \file
/// The DESIGN.md GC invariant: collecting at every allocation must not
/// change any observable result — across the evaluator, both compilers,
/// the specializer, and the fused path.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct StressCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  const char *Arg;      // datum
  const char *Expected; // datum
};

const StressCase StressCases[] = {
    {"list_building",
     "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))"
     "(define (go n) (iota n))",
     "go", "20", "(20 19 18 17 16 15 14 13 12 11 10 9 8 7 6 5 4 3 2 1)"},
    {"closure_churn",
     "(define (make n) (lambda (x) (+ x n)))"
     "(define (go n) (if (zero? n) 0 (+ ((make n) 1) (go (- n 1)))))",
     "go", "30", "495"},
    {"boxes",
     "(define (go n)"
     "  (let ((acc 0))"
     "    (letrec ((loop (lambda (i)"
     "        (if (zero? i) acc"
     "            (begin (set! acc (+ acc i)) (loop (- i 1)))))))"
     "      (loop n))))",
     "go", "50", "1275"},
};

class GcStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(GcStress, EvalUnderStress) {
  const StressCase &C = GetParam();
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(P, W.parse(C.Source));
  PECOMP_UNWRAP(R, W.evalCall(P, C.Fn, {W.value(C.Arg)}));
  expectValueEq(R, W.value(C.Expected));
  EXPECT_GT(W.Heap.totalCollections(), 0u);
}

TEST_P(GcStress, CompiledUnderStress) {
  const StressCase &C = GetParam();
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(P, W.parse(C.Source));
  PECOMP_UNWRAP(R, W.runStock(P, C.Fn, {W.value(C.Arg)}));
  expectValueEq(R, W.value(C.Expected));
  PECOMP_UNWRAP(R2, W.runAnf(P, C.Fn, {W.value(C.Arg)}));
  expectValueEq(R2, W.value(C.Expected));
}

INSTANTIATE_TEST_SUITE_P(Gc, GcStress, ::testing::ValuesIn(StressCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(GcStressSpec, SpecializationUnderStress) {
  // The specializer allocates static values while residual code is being
  // generated; stress collections must not disturb either.
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::dotProductProgram(), "dot",
                         "SD"));
  std::optional<vm::Value> Args[] = {W.value("(1 2 3 4)"), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(),
                              {W.value("(10 20 30 40)")}));
  expectValueEq(R, W.num(300));
  EXPECT_GT(W.Heap.totalCollections(), 0u);
}

TEST(GcStressSpec, FusedPathUnderStress) {
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::dotProductProgram(), "dot",
                         "SD"));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> Args[] = {W.value("(5 0 5)"), std::nullopt};
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, Args));
  PECOMP_UNWRAP(R, W.runCompiled(Globals, Obj.Residual, Obj.Entry,
                                 {W.value("(1 2 3)")}));
  expectValueEq(R, W.num(20));
}

TEST(GcStressSpec, MixwellEndToEndUnderStress) {
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "SD"));
  vm::Value Program =
      W.value(std::string(workloads::mixwellSampleProgram()));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> Args[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, Args));
  PECOMP_UNWRAP(R, W.runCompiled(Globals, Obj.Residual, Obj.Entry,
                                 {W.value("(4 (9 5))")}));
  expectValueEq(R, W.value("(38 3)"));
  EXPECT_GT(W.Heap.totalCollections(), 100u);
}

} // namespace
