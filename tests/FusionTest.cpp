//===- tests/FusionTest.cpp - Fusion correctness ---------------------------===//
///
/// \file
/// The paper's fusion theorem (Sec. 5.4), checked in its strongest form:
/// for every workload and division,
///
///   anfCompile(specialize<SyntaxBuilder>(p, s))
///     ==  specialize<CodeGenBuilder>(p, s)
///
/// byte for byte (code bytes, literal tables, children, global indices),
/// and behaviourally on dynamic inputs. The fused path must never build a
/// residual AST — that is deforestation's point — so we also check its
/// outputs come straight from the combinators.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct FusionCase {
  const char *Name;
  std::string Source;
  const char *Entry;
  const char *Division;
  std::vector<std::string> StaticArgs;  // datum text, in parameter order
  std::vector<std::string> DynamicArgs; // datum text for the residual call
  const char *Expected;
};

std::vector<FusionCase> fusionCases() {
  return {
      {"power", std::string(workloads::powerProgram()), "power", "DS",
       {"5"}, {"3"}, "243"},
      {"power_all_dynamic", std::string(workloads::powerProgram()), "power",
       "DD", {}, {"2", "10"}, "1024"},
      {"dot", std::string(workloads::dotProductProgram()), "dot", "SD",
       {"(1 2 3)"}, {"(4 5 6)"}, "32"},
      {"dyn_if_chain",
       "(define (f s d) (+ (if (zero? d) s (* s 2))"
       "                   (if (< d 0) 1 (+ s d))))",
       "f", "SD", {"10"}, {"4"}, "34"},
      {"memo_loop",
       "(define (loop s d acc)"
       "  (if (zero? d) acc (loop s (- d 1) (+ acc s))))",
       "loop", "SDD", {"7"}, {"6", "0"}, "42"},
      {"closures",
       "(define (make s d) (lambda (x) (+ (* s x) d)))"
       "(define (use s d) ((make s d) 10))",
       "use", "SD", {"3"}, {"4"}, "34"},
      {"mixwell",
       std::string(workloads::mixwellInterpreter()), "mixwell-run", "SD",
       {std::string(workloads::mixwellSampleProgram())}, {"(4 (9 5))"},
       "(38 3)"},
      {"lazy", std::string(workloads::lazyInterpreter()), "lazy-run", "SD",
       {std::string(workloads::lazySampleProgram())}, {"6"}, "37"},
  };
}

class FusionCaseTest : public ::testing::TestWithParam<FusionCase> {};

TEST_P(FusionCaseTest, FusedEqualsCompiledResidual) {
  const FusionCase &C = GetParam();
  World W;

  auto MakeArgs = [&](pgg::GeneratingExtension &G) {
    std::vector<std::optional<vm::Value>> Args;
    size_t StaticIndex = 0;
    for (bta::BT T : G.effectiveDivision()) {
      // Supply values in declared order: the division string tells which
      // parameters are static.
      (void)T;
      Args.push_back(std::nullopt);
    }
    // Fill static slots per the division string.
    size_t P = 0;
    for (char D : std::string(C.Division)) {
      if (D == 'S')
        Args[P] = W.value(C.StaticArgs[StaticIndex++]);
      ++P;
    }
    return Args;
  };

  // --- Source path: specialize to residual source, then compile it. ---
  PECOMP_UNWRAP(GenSrc, pgg::GeneratingExtension::create(
                            W.Heap, C.Source, C.Entry, C.Division));
  auto SrcArgs = MakeArgs(*GenSrc);
  PECOMP_UNWRAP(Res, GenSrc->generateSource(SrcArgs));

  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators CompA(StoreA, GlobalsA);
  compiler::AnfCompiler AC(CompA);
  compiler::CompiledProgram FromSource = AC.compileProgram(Res.Residual);

  // --- Fused path: specialize directly to object code. ---
  PECOMP_UNWRAP(GenObj, pgg::GeneratingExtension::create(
                            W.Heap, C.Source, C.Entry, C.Division));
  auto ObjArgs = MakeArgs(*GenObj);
  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::Compilators CompB(StoreB, GlobalsB);
  PECOMP_UNWRAP(Obj, GenObj->generateObject(CompB, ObjArgs));

  // Same residual entry position, same number of residual functions.
  ASSERT_EQ(FromSource.Defs.size(), Obj.Residual.Defs.size());

  // Strong form: byte-for-byte identical code objects, in order.
  for (size_t I = 0; I != FromSource.Defs.size(); ++I) {
    EXPECT_TRUE(vm::codeEquals(FromSource.Defs[I].second,
                               Obj.Residual.Defs[I].second))
        << "definition #" << I << " differs\n--- compiled residual:\n"
        << FromSource.Defs[I].second->disassemble()
        << "--- fused:\n"
        << Obj.Residual.Defs[I].second->disassemble();
  }

  // Behavioural form: both run and agree with the evaluator's result on
  // the unspecialized program applied to all inputs.
  std::vector<vm::Value> DynVals;
  for (const std::string &Arg : C.DynamicArgs)
    DynVals.push_back(W.value(Arg));
  vm::Value Expected = W.value(C.Expected);

  PECOMP_UNWRAP(RSrc, W.runCompiled(GlobalsA, FromSource, Res.Entry, DynVals));
  expectValueEq(RSrc, Expected);
  PECOMP_UNWRAP(RObj, W.runCompiled(GlobalsB, Obj.Residual, Obj.Entry, DynVals));
  expectValueEq(RObj, Expected);

  // Cross-check against direct evaluation of the original program on the
  // full input.
  PECOMP_UNWRAP(P, W.parse(C.Source));
  std::vector<vm::Value> FullArgs;
  size_t StaticIndex = 0, DynIndex = 0;
  for (char D : std::string(C.Division))
    FullArgs.push_back(D == 'S' ? W.value(C.StaticArgs[StaticIndex++])
                                : DynVals[DynIndex++]);
  PECOMP_UNWRAP(Direct, W.evalCall(P, C.Entry, FullArgs));
  expectValueEq(Direct, Expected);
}

INSTANTIATE_TEST_SUITE_P(Fusion, FusionCaseTest,
                         ::testing::ValuesIn(fusionCases()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
