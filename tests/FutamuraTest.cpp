//===- tests/FutamuraTest.cpp - Interpreter specialization tests -----------===//
///
/// \file
/// Compiler generation by the first Futamura projection, over a battery
/// of MIXWELL and LAZY programs: for every interpreted program p and
/// input d,
///
///     vm(specialize(interp, p), d) == eval(interp, p ++ d)
///
/// on both residual paths. Also checks the "RTCG as normal compilation"
/// reading (everything dynamic, the paper's Fig. 8 semantics).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct InterpCase {
  const char *Name;
  const char *Language; // "mixwell" or "lazy"
  const char *Program;  // datum text
  std::vector<std::pair<const char *, const char *>> InputsAndOutputs;
};

std::vector<InterpCase> interpCases() {
  return {
      {"mw_identity", "mixwell", "((main (x) (var x)))",
       {{"(5)", "5"}, {"((a b))", "(a b)"}}},
      {"mw_const", "mixwell", "((main (x) (const 42)))", {{"(0)", "42"}}},
      {"mw_arith", "mixwell",
       "((main (x y) (op2 + (op2 * (var x) (var x)) (var y))))",
       {{"(3 4)", "13"}, {"(0 7)", "7"}}},
      {"mw_factorial", "mixwell",
       "((main (n) (call fact (var n)))"
       " (fact (n) (if (op2 = (var n) (const 0)) (const 1)"
       "             (op2 * (var n) (call fact (op2 - (var n) (const 1)))))))",
       {{"(0)", "1"}, {"(5)", "120"}, {"(10)", "3628800"}}},
      {"mw_ackermann_small", "mixwell",
       "((main (m n) (call ack (var m) (var n)))"
       " (ack (m n)"
       "  (if (op2 = (var m) (const 0)) (op2 + (var n) (const 1))"
       "   (if (op2 = (var n) (const 0))"
       "       (call ack (op2 - (var m) (const 1)) (const 1))"
       "       (call ack (op2 - (var m) (const 1))"
       "                 (call ack (var m) (op2 - (var n) (const 1))))))))",
       {{"(2 3)", "9"}, {"(1 5)", "7"}}},
      {"mw_list_ops", "mixwell",
       "((main (xs) (call rev (var xs) (const ())))"
       " (rev (xs acc) (if (op1 null? (var xs)) (var acc)"
       "   (call rev (op1 cdr (var xs)) (op2 cons (op1 car (var xs))"
       "                                          (var acc))))))",
       {{"((1 2 3))", "(3 2 1)"}, {"(())", "()"}}},
      {"mw_even_odd", "mixwell",
       "((main (n) (call even (var n)))"
       " (even (n) (if (op2 = (var n) (const 0)) (const #t)"
       "              (call odd (op2 - (var n) (const 1)))))"
       " (odd (n) (if (op2 = (var n) (const 0)) (const #f)"
       "             (call even (op2 - (var n) (const 1))))))",
       {{"(10)", "#t"}, {"(7)", "#f"}}},
      {"lz_identity", "lazy", "((main (x) (var x)))", {{"9", "9"}}},
      {"lz_unused_error_arg", "lazy",
       // Call-by-name: the bad division is never forced.
       "((main (x) (call pick (var x) (op2 quotient (const 1) (const 0))))"
       " (pick (a b) (var a)))",
       {{"11", "11"}}},
      {"lz_countdown", "lazy",
       "((main (n) (call count (var n)))"
       " (count (n) (if (op2 = (var n) (const 0)) (const done)"
       "               (call count (op2 - (var n) (const 1))))))",
       {{"6", "done"}}},
      {"lz_double_use_reevaluates", "lazy",
       // Call-by-name (no memoization): b is evaluated twice — still the
       // same value here, but exercises multiple forcing.
       "((main (n) (call twice (op2 + (var n) (const 1))))"
       " (twice (b) (op2 + (var b) (var b))))",
       {{"20", "42"}}},
  };
}

class FutamuraCase : public ::testing::TestWithParam<InterpCase> {};

TEST_P(FutamuraCase, CompiledAgreesWithInterpreted) {
  const InterpCase &C = GetParam();
  World W;
  bool IsMixwell = std::string(C.Language) == "mixwell";
  std::string_view InterpSource = IsMixwell ? workloads::mixwellInterpreter()
                                            : workloads::lazyInterpreter();
  const char *Entry = IsMixwell ? "mixwell-run" : "lazy-run";

  vm::Value ProgramValue = W.value(C.Program);

  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(W.Heap, InterpSource,
                                                      Entry, "SD"));
  std::optional<vm::Value> SpecArgs[] = {ProgramValue, std::nullopt};

  // Source path.
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  // Fused path.
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, SpecArgs));

  PECOMP_UNWRAP(Interp, W.parse(InterpSource));

  for (const auto &[Input, Output] : C.InputsAndOutputs) {
    vm::Value In = W.value(Input);
    vm::Value Expected = W.value(Output);

    PECOMP_UNWRAP(Direct, W.evalCall(Interp, Entry, {ProgramValue, In}));
    expectValueEq(Direct, Expected);

    PECOMP_UNWRAP(ViaSource, W.runAnf(Res.Residual, Res.Entry.str(), {In}));
    expectValueEq(ViaSource, Expected);

    PECOMP_UNWRAP(ViaObject,
                  W.runCompiled(Globals, Obj.Residual, Obj.Entry, {In}));
    expectValueEq(ViaObject, Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Futamura, FutamuraCase,
                         ::testing::ValuesIn(interpCases()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(Fig8Semantics, AllDynamicResidualizationIsCompilation) {
  // With everything dynamic, the generating extension residualizes the
  // interpreter one-to-one: the output still interprets any program.
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "DD"));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> SpecArgs[] = {std::nullopt, std::nullopt};
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, SpecArgs));

  vm::Value Program = W.value("((main (n) (op2 * (var n) (var n))))");
  vm::Value In = W.value("(12)");
  PECOMP_UNWRAP(R, W.runCompiled(Globals, Obj.Residual, Obj.Entry,
                                 {Program, In}));
  expectValueEq(R, W.num(144));
}

TEST(FutamuraErrors, InterpretedErrorsSurfaceThroughResidualCode) {
  // The interpreted program hits the unbound-variable error path; the
  // residualized code must raise the same error.
  World W;
  vm::Value Program = W.value("((main (x) (var nope)))");
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "SD"));
  std::optional<vm::Value> SpecArgs[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  Result<vm::Value> R =
      W.runAnf(Res.Residual, Res.Entry.str(), {W.value("(1)")});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("unbound variable"), std::string::npos);
}

TEST(FutamuraStats, SpecializationStatisticsAreSane) {
  World W;
  vm::Value Program = W.value(std::string(workloads::mixwellSampleProgram()));
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "SD"));
  std::optional<vm::Value> SpecArgs[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  EXPECT_GT(Res.Stats.UnfoldedCalls, Res.Stats.MemoizedCalls);
  EXPECT_EQ(Res.Stats.ResidualFunctions, Res.Residual.Defs.size());
  EXPECT_GT(Res.Stats.StaticPrims, 0u);  // interpreter dispatch ran
  EXPECT_GT(Res.Stats.ResidualPrims, 0u); // object-level arithmetic remains
}

TEST(FutamuraSharing, SameStaticProgramSharesResidualFunctions) {
  // Specializing the same interpreter twice within one extension must not
  // duplicate work across runs (each run gets a fresh memo table, so
  // function counts match exactly).
  World W;
  vm::Value Program = W.value("((main (n) (call f (var n)))"
                              " (f (n) (if (op2 = (var n) (const 0))"
                              "   (const 0) (call f (op2 - (var n) "
                              "(const 1))))))");
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "SD"));
  std::optional<vm::Value> SpecArgs[] = {Program, std::nullopt};
  PECOMP_UNWRAP(First, Gen->generateSource(SpecArgs));
  PECOMP_UNWRAP(Second, Gen->generateSource(SpecArgs));
  EXPECT_EQ(First.Residual.Defs.size(), Second.Residual.Defs.size());
}

} // namespace
