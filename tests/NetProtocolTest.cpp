//===- tests/NetProtocolTest.cpp - Wire protocol framing and codec --------===//
///
/// \file
/// The byte layer in isolation: encode/decode round trips for every frame
/// type, the incremental decoder against torn delivery (every possible
/// split point), the framing-error taxonomy (bad magic, oversized length
/// prefix), payload-level malformations that must fail one request
/// without desyncing the stream, and a deterministic fuzz-lite hammer
/// shoveling mutated frames through the decoder. Everything here runs
/// without a socket — the same codec objects the server and client use.
///
//===----------------------------------------------------------------------===//

#include "pgg/NetProtocol.h"

#include "gtest/gtest.h"

#include <random>

using namespace pecomp;
using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

namespace {

NetRequest sampleRequest() {
  NetRequest R;
  R.Division = "DS";
  R.SpecArgs = {"_", "16"};
  R.RunArgs = {"(1 2 3)"};
  return R;
}

/// Feeds bytes and expects exactly one frame.
Frame decodeOne(const std::vector<uint8_t> &Bytes) {
  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size());
  Frame F;
  EXPECT_EQ(D.next(F), FrameDecoder::Status::Ready);
  Frame None;
  EXPECT_EQ(D.next(None), FrameDecoder::Status::NeedMore);
  return F;
}

TEST(NetProtocol, RequestRoundTrip) {
  NetRequest In = sampleRequest();
  Frame F = decodeOne(encodeRequest(/*Tenant=*/7, /*RequestId=*/42, In));
  EXPECT_EQ(F.Header.Version, ProtocolVersion);
  EXPECT_EQ(F.Header.Type, FrameType::Request);
  EXPECT_EQ(F.Header.Tenant, 7u);
  EXPECT_EQ(F.Header.RequestId, 42u);

  Result<NetRequest> Out = decodeRequestPayload(F.Payload);
  ASSERT_TRUE(Out.ok()) << Out.error().message();
  EXPECT_EQ(Out->Division, In.Division);
  EXPECT_EQ(Out->SpecArgs, In.SpecArgs);
  EXPECT_EQ(Out->RunArgs, In.RunArgs);
}

TEST(NetProtocol, ResponseRoundTripOk) {
  RtcgResponse R;
  R.Ok = true;
  R.Value = "1024";
  R.CacheHit = true;
  R.DiskHit = true;
  Frame F = decodeOne(encodeResponse(3, 99, R));
  EXPECT_EQ(F.Header.Type, FrameType::Response);
  Result<NetResponse> Out = decodeResponsePayload(F.Payload);
  ASSERT_TRUE(Out.ok());
  RtcgResponse Back = toRtcgResponse(F.Header, *Out);
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.Value, "1024");
  EXPECT_TRUE(Back.CacheHit);
  EXPECT_TRUE(Back.DiskHit);
  EXPECT_FALSE(Back.Respecialized);
  EXPECT_EQ(Back.TrapCode, 0);
}

TEST(NetProtocol, ResponseRoundTripTrap) {
  RtcgResponse R;
  R.Ok = false;
  R.ErrorText = "trap: out of fuel";
  R.TrapCode = 3;
  R.StoreCode = 101;
  R.StoreNote = "checksum mismatch";
  Frame F = decodeOne(encodeResponse(0, 7, R));
  Result<NetResponse> Out = decodeResponsePayload(F.Payload);
  ASSERT_TRUE(Out.ok());
  EXPECT_EQ(Out->Status, 1);
  RtcgResponse Back = toRtcgResponse(F.Header, *Out);
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.TrapCode, 3);
  EXPECT_EQ(Back.ErrorText, "trap: out of fuel");
  EXPECT_EQ(Back.StoreCode, 101);
  EXPECT_EQ(Back.StoreNote, "checksum mismatch");
}

TEST(NetProtocol, ProtoErrorRoundTripClassified) {
  uint32_t Code = static_cast<uint32_t>(ServiceErrorCodeBase) +
                  static_cast<uint32_t>(ServiceError::Overloaded);
  Frame F = decodeOne(encodeProtoError(5, 11, Code, "server overloaded"));
  EXPECT_EQ(F.Header.Type, FrameType::ProtoError);
  Result<NetResponse> Out = decodeProtoErrorPayload(F.Payload);
  ASSERT_TRUE(Out.ok());
  RtcgResponse Back = toRtcgResponse(F.Header, *Out);
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.ServiceCode, static_cast<int>(Code));
  Error E(Back.ErrorText);
  E.setCode(Back.ServiceCode);
  EXPECT_EQ(serviceErrorOf(E), ServiceError::Overloaded);
}

TEST(NetProtocol, HelloRoundTrips) {
  Frame H = decodeOne(encodeHello(1, 3));
  Result<std::pair<uint8_t, uint8_t>> R =
      decodeHelloPayload(FrameType::Hello, H.Payload);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->first, 1);
  EXPECT_EQ(R->second, 3);

  Frame A = decodeOne(encodeHelloAck(1));
  Result<std::pair<uint8_t, uint8_t>> V =
      decodeHelloPayload(FrameType::HelloAck, A.Payload);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V->first, 1);
}

TEST(NetProtocol, TornDeliveryEverySplitPoint) {
  // A frame must decode identically no matter where the byte stream is
  // torn — including inside the header and inside the length field.
  std::vector<uint8_t> Bytes = encodeRequest(9, 1234, sampleRequest());
  for (size_t Split = 0; Split <= Bytes.size(); ++Split) {
    FrameDecoder D;
    Frame F;
    D.feed(Bytes.data(), Split);
    if (Split < Bytes.size()) {
      EXPECT_EQ(D.next(F), FrameDecoder::Status::NeedMore) << Split;
    }
    D.feed(Bytes.data() + Split, Bytes.size() - Split);
    ASSERT_EQ(D.next(F), FrameDecoder::Status::Ready) << Split;
    EXPECT_EQ(F.Header.RequestId, 1234u);
    Result<NetRequest> R = decodeRequestPayload(F.Payload);
    EXPECT_TRUE(R.ok()) << Split;
  }
}

TEST(NetProtocol, ByteAtATimeDelivery) {
  std::vector<uint8_t> Bytes = encodeRequest(1, 2, sampleRequest());
  FrameDecoder D;
  Frame F;
  for (size_t I = 0; I + 1 < Bytes.size(); ++I) {
    D.feed(&Bytes[I], 1);
    EXPECT_EQ(D.next(F), FrameDecoder::Status::NeedMore);
  }
  D.feed(&Bytes.back(), 1);
  EXPECT_EQ(D.next(F), FrameDecoder::Status::Ready);
}

TEST(NetProtocol, PipelinedFramesInOneBuffer) {
  // Several frames fed in one batch come back in order with nothing
  // left over — the interleaved-pipelining base case.
  std::vector<uint8_t> Bytes;
  for (uint64_t Id = 1; Id <= 5; ++Id) {
    std::vector<uint8_t> One = encodeRequest(2, Id, sampleRequest());
    Bytes.insert(Bytes.end(), One.begin(), One.end());
  }
  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size());
  for (uint64_t Id = 1; Id <= 5; ++Id) {
    Frame F;
    ASSERT_EQ(D.next(F), FrameDecoder::Status::Ready);
    EXPECT_EQ(F.Header.RequestId, Id);
  }
  Frame F;
  EXPECT_EQ(D.next(F), FrameDecoder::Status::NeedMore);
  EXPECT_EQ(D.pending(), 0u);
}

TEST(NetProtocol, BadMagicPoisonsStream) {
  std::vector<uint8_t> Bytes = encodeRequest(0, 1, sampleRequest());
  Bytes[0] ^= 0xFF;
  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size());
  Frame F;
  EXPECT_EQ(D.next(F), FrameDecoder::Status::Failed);
  Error E = D.error();
  EXPECT_EQ(serviceErrorOf(E), ServiceError::BadFrame);
  // Poisoned: feeding a pristine frame afterwards changes nothing.
  std::vector<uint8_t> Good = encodeRequest(0, 2, sampleRequest());
  D.feed(Good.data(), Good.size());
  EXPECT_EQ(D.next(F), FrameDecoder::Status::Failed);
}

TEST(NetProtocol, OversizedLengthPrefixFails) {
  std::vector<uint8_t> Bytes = encodeRequest(0, 1, sampleRequest());
  // Claim a payload just above the decoder's ceiling.
  uint32_t Huge = 1025;
  for (int I = 0; I != 4; ++I)
    Bytes[20 + I] = static_cast<uint8_t>(Huge >> (8 * I));
  FrameDecoder D(/*MaxFrameBytes=*/1024);
  D.feed(Bytes.data(), Bytes.size());
  Frame F;
  EXPECT_EQ(D.next(F), FrameDecoder::Status::Failed);
  EXPECT_EQ(serviceErrorOf(D.error()), ServiceError::BadFrame);
  // The whole 4 GiB-scale range must be rejected, not wrapped.
  std::vector<uint8_t> Max = encodeRequest(0, 1, sampleRequest());
  for (int I = 0; I != 4; ++I)
    Max[20 + I] = 0xFF;
  FrameDecoder D2;
  D2.feed(Max.data(), Max.size());
  EXPECT_EQ(D2.next(F), FrameDecoder::Status::Failed);
}

TEST(NetProtocol, VersionSkewIsVisibleNotFatal) {
  // A future version is a *frame-level* property: the decoder yields the
  // frame (the header layout is versioned-stable), and policy — reject
  // with BadVersion — lives in the server, where it is classified.
  std::vector<uint8_t> Bytes = encodeRequest(0, 1, sampleRequest());
  Bytes[4] = 9; // version byte
  Frame F = decodeOne(Bytes);
  EXPECT_EQ(F.Header.Version, 9);
}

TEST(NetProtocol, TruncatedPayloadFailsThatRequestOnly) {
  // Claimed argument lengths beyond the payload end must be a classified
  // BadFrame, not a crash or an over-read.
  NetRequest In = sampleRequest();
  std::vector<uint8_t> Bytes = encodeRequest(0, 1, In);
  Frame F = decodeOne(Bytes);
  ASSERT_GE(F.Payload.size(), 8u);
  // Corrupt the first spec-arg length field (after u16 divlen + div +
  // u16 count) to claim far more bytes than remain.
  size_t LenOff = 2 + In.Division.size() + 2;
  F.Payload[LenOff] = 0xFF;
  F.Payload[LenOff + 1] = 0xFF;
  Result<NetRequest> R = decodeRequestPayload(F.Payload);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(serviceErrorOf(R.error()), ServiceError::BadFrame);
}

TEST(NetProtocol, TrailingPayloadBytesRejected) {
  std::vector<uint8_t> Frame0 = encodeRequest(0, 1, sampleRequest());
  Frame F = decodeOne(Frame0);
  F.Payload.push_back(0);
  Result<NetRequest> R = decodeRequestPayload(F.Payload);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(serviceErrorOf(R.error()), ServiceError::BadFrame);
}

TEST(NetProtocol, EmptyRequestPayloadRejected) {
  Result<NetRequest> R = decodeRequestPayload({});
  EXPECT_FALSE(R.ok());
  Result<NetResponse> P = decodeResponsePayload({});
  EXPECT_FALSE(P.ok());
  Result<NetResponse> E = decodeProtoErrorPayload({});
  EXPECT_FALSE(E.ok());
}

TEST(NetProtocol, DecoderFuzzLite) {
  // Deterministic mutation hammer: valid frames with random byte flips,
  // truncations, and garbage prefixes. The decoder must never crash,
  // never over-read (ASan enforces), and classify every failure.
  std::mt19937_64 Rng(0xC0FFEE);
  NetRequest In = sampleRequest();
  for (int Iter = 0; Iter != 2000; ++Iter) {
    std::vector<uint8_t> Bytes =
        encodeRequest(static_cast<uint32_t>(Rng() & 0xFF), Rng() & 0xFFFF, In);
    switch (Rng() % 4) {
    case 0: // flip a byte
      Bytes[Rng() % Bytes.size()] ^= static_cast<uint8_t>(1 + Rng() % 255);
      break;
    case 1: // truncate
      Bytes.resize(Rng() % Bytes.size());
      break;
    case 2: { // garbage prefix
      std::vector<uint8_t> G(Rng() % 16 + 1);
      for (uint8_t &B : G)
        B = static_cast<uint8_t>(Rng());
      Bytes.insert(Bytes.begin(), G.begin(), G.end());
      break;
    }
    default: // pristine
      break;
    }
    FrameDecoder D(1u << 20);
    D.feed(Bytes.data(), Bytes.size());
    Frame F;
    for (int Guard = 0; Guard != 8; ++Guard) {
      FrameDecoder::Status St = D.next(F);
      if (St == FrameDecoder::Status::Ready) {
        // Whatever decodes must also payload-decode without crashing.
        (void)decodeRequestPayload(F.Payload);
        continue;
      }
      if (St == FrameDecoder::Status::Failed) {
        EXPECT_EQ(serviceErrorOf(D.error()), ServiceError::BadFrame);
      }
      break;
    }
  }
}

} // namespace
