//===- tests/VerifyTest.cpp - Byte-code verifier tests ----------------------===//

#include "TestUtil.h"

#include "vm/Verify.h"

using namespace pecomp;
using namespace pecomp::test;
using vm::Op;

namespace {

/// Everything the compilers emit must verify.
TEST(VerifyTest, CompiledProgramsVerify) {
  World W;
  const char *Sources[] = {
      "(define (f x) x)",
      "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))",
      "(define (f x) (let ((g (lambda (y) (+ x y)))) (g (g x))))",
      "(define (f a) (lambda (b) (lambda (c) (+ a (+ b c)))))",
      "(define (f x) (cond ((< x 0) 'neg) ((= x 0) 'zero) (else 'pos)))",
      "(define (go n) (letrec ((e? (lambda (k) (if (zero? k) #t "
      "(o? (- k 1))))) (o? (lambda (k) (if (zero? k) #f (e? (- k 1))))))"
      " (e? n)))",
  };
  for (const char *Source : Sources) {
    PECOMP_UNWRAP(P, W.parse(Source));
    // Stock path.
    {
      vm::CodeStore Store(W.Heap);
      vm::GlobalTable Globals;
      compiler::Compilators Comp(Store, Globals);
      compiler::StockCompiler SC(Comp);
      for (auto &[Name, Code] : SC.compileProgram(P).Defs) {
        auto Err = vm::verifyCode(Code);
        EXPECT_FALSE(Err.has_value())
            << *Err << "\n" << Code->disassemble();
      }
    }
    // ANF path.
    {
      Program Anf = anfConvert(P, W.Exprs);
      vm::CodeStore Store(W.Heap);
      vm::GlobalTable Globals;
      compiler::Compilators Comp(Store, Globals);
      compiler::AnfCompiler AC(Comp);
      for (auto &[Name, Code] : AC.compileProgram(Anf).Defs) {
        auto Err = vm::verifyCode(Code);
        EXPECT_FALSE(Err.has_value())
            << *Err << "\n" << Code->disassemble();
      }
    }
  }
}

TEST(VerifyTest, FusedGeneratingExtensionOutputVerifies) {
  World W;
  vm::Value Program = W.value(std::string(workloads::mixwellSampleProgram()));
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::mixwellInterpreter(),
                         "mixwell-run", "SD"));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> Args[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, Args));
  for (auto &[Name, Code] : Obj.Residual.Defs) {
    auto Err = vm::verifyCode(Code);
    EXPECT_FALSE(Err.has_value()) << *Err << "\n" << Code->disassemble();
  }
}

/// Hand-corrupted code objects must be rejected with a useful message.
class BadCode : public ::testing::Test {
protected:
  BadCode() : Store(W.Heap) {}

  vm::CodeObject *fresh(uint32_t Arity) {
    return Store.create("bad", Arity);
  }

  static void emit(vm::CodeObject *C, std::initializer_list<uint8_t> Bytes) {
    for (uint8_t B : Bytes)
      C->mutableCode().push_back(B);
  }

  void expectError(const vm::CodeObject *C, const char *Needle,
                   size_t NumFree = 0) {
    auto Err = vm::verifyCode(C, NumFree);
    ASSERT_TRUE(Err.has_value()) << C->disassemble();
    EXPECT_NE(Err->find(Needle), std::string::npos) << *Err;
  }

  World W;
  vm::CodeStore Store;
};

TEST_F(BadCode, EmptyCode) { expectError(fresh(0), "empty"); }

TEST_F(BadCode, TruncatedOperand) {
  vm::CodeObject *C = fresh(0);
  emit(C, {static_cast<uint8_t>(Op::Const), 0x00}); // missing one byte
  expectError(C, "truncated");
}

TEST_F(BadCode, LiteralIndexOutOfRange) {
  vm::CodeObject *C = fresh(0);
  emit(C, {static_cast<uint8_t>(Op::Const), 0x05, 0x00,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "literal index");
}

TEST_F(BadCode, LocalBeyondDepth) {
  vm::CodeObject *C = fresh(1);
  emit(C, {static_cast<uint8_t>(Op::LocalRef), 0x07, 0x00,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "beyond stack depth");
}

TEST_F(BadCode, FreeRefWithoutCaptures) {
  vm::CodeObject *C = fresh(0);
  emit(C, {static_cast<uint8_t>(Op::FreeRef), 0x00, 0x00,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "capture count");
}

TEST_F(BadCode, FreeRefWithinCapturesVerifies) {
  vm::CodeObject *C = fresh(0);
  emit(C, {static_cast<uint8_t>(Op::FreeRef), 0x00, 0x00,
           static_cast<uint8_t>(Op::Return)});
  EXPECT_FALSE(vm::verifyCode(C, /*NumFree=*/1).has_value());
}

TEST_F(BadCode, StackUnderflowOnReturn) {
  vm::CodeObject *C = fresh(0);
  emit(C, {static_cast<uint8_t>(Op::Return)});
  expectError(C, "underflow");
}

TEST_F(BadCode, StackUnderflowOnCall) {
  vm::CodeObject *C = fresh(1);
  emit(C, {static_cast<uint8_t>(Op::Call), 0x03,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "underflow");
}

TEST_F(BadCode, JumpOutOfRange) {
  vm::CodeObject *C = fresh(1);
  emit(C, {static_cast<uint8_t>(Op::Jump), 0x40, 0x00});
  expectError(C, "out of range");
}

TEST_F(BadCode, FallingOffTheEnd) {
  vm::CodeObject *C = fresh(1);
  emit(C, {static_cast<uint8_t>(Op::LocalRef), 0x00, 0x00});
  expectError(C, "off the end");
}

TEST_F(BadCode, InconsistentDepthAtJoin) {
  // if-false jump to a point reached with a different stack depth.
  vm::CodeObject *C = fresh(1);
  // 0: LocalRef 0 (depth 2), 3: JumpIfFalse +3 -> target 8 at depth 1
  // 6: LocalRef 0 (depth 2) ... falls to 8 wait compute: layout:
  //  0: LocalRef 0        depth 1 -> 2
  //  3: JumpIfFalse -> 9  pops -> depth 1; target 9 expects depth 1
  //  6: LocalRef 0        depth 1 -> 2
  //  9: Return            reached with depth 2 (fallthrough) and 1 (jump)
  emit(C, {static_cast<uint8_t>(Op::LocalRef), 0x00, 0x00,
           static_cast<uint8_t>(Op::JumpIfFalse), 0x03, 0x00,
           static_cast<uint8_t>(Op::LocalRef), 0x00, 0x00,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "inconsistent stack depth");
}

TEST_F(BadCode, UnknownPrimitiveNumber) {
  vm::CodeObject *C = fresh(1);
  emit(C, {static_cast<uint8_t>(Op::LocalRef), 0x00, 0x00,
           static_cast<uint8_t>(Op::Prim), 0xEE,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "unknown primitive");
}

TEST_F(BadCode, ChildIndexOutOfRange) {
  vm::CodeObject *C = fresh(0);
  emit(C, {static_cast<uint8_t>(Op::MakeClosure), 0x00, 0x00, 0x00, 0x00,
           static_cast<uint8_t>(Op::Return)});
  expectError(C, "child index");
}

} // namespace
