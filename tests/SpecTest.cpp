//===- tests/SpecTest.cpp - Specializer (source path) tests ----------------===//
///
/// \file
/// Tests of the ordinary partial evaluator: BTA + specializer with the
/// SyntaxBuilder. Checks the first Futamura-style property
/// vm(residual_p_s, d) == eval(p, s ++ d), that residual programs are in
/// ANF, and the shapes of classic specializations.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

TEST(Spec, PowerUnfoldsCompletely) {
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::powerProgram(), "power", "DS"));

  std::optional<vm::Value> Args[] = {std::nullopt, W.num(5)};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));

  // The residual program is in ANF (checked by the driver too) and
  // consists of exactly one function of one parameter.
  ASSERT_EQ(Res.Residual.Defs.size(), 1u);
  EXPECT_EQ(Res.Residual.Defs[0].Fn->params().size(), 1u);

  // No residual conditionals or calls: power with a static exponent
  // specializes to a straight line of multiplications.
  std::string Printed = Res.Residual.print();
  EXPECT_EQ(Printed.find("(if"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("power"), Printed.find(Res.Residual.Defs[0].Name.str()))
      << Printed;

  // It computes x^5.
  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(), {W.num(3)}));
  expectValueEq(R, W.num(243));

  // And it agrees with the unspecialized program on other inputs.
  PECOMP_UNWRAP(R2, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(7)}));
  expectValueEq(R2, W.num(16807));
}

TEST(Spec, PowerDynamicExponentResidualizesLoop) {
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::powerProgram(), "power", "DD"));
  std::optional<vm::Value> Args[] = {std::nullopt, std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));

  // All-dynamic specialization reproduces the program (one recursive
  // residual function).
  PECOMP_UNWRAP(R, W.runAnf(Res.Residual, Res.Entry.str(),
                            {W.num(2), W.num(10)}));
  expectValueEq(R, W.num(1024));
}

TEST(Spec, DotProductSpecializesOnStaticVector) {
  World W;
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(
                    W.Heap, workloads::dotProductProgram(), "dot", "SD"));
  std::optional<vm::Value> Args[] = {W.value("(2 0 3)"), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));

  std::string Printed = Res.Residual.print();
  EXPECT_EQ(Printed.find("(if"), std::string::npos) << Printed;

  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(),
                              {W.value("(10 100 1000)")}));
  expectValueEq(R, W.num(3020));
}

TEST(Spec, ResidualSourceRoundTripsThroughPrinter) {
  // Residual source must reload through the front end — this is the
  // "load residual program" path of the paper's Fig. 7.
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::powerProgram(), "power", "DS"));
  std::optional<vm::Value> Args[] = {std::nullopt, W.num(8)};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));

  std::string Printed = Res.Residual.print();
  PECOMP_UNWRAP(Reloaded, W.parse(Printed));
  PECOMP_UNWRAP(R, W.runStock(Reloaded, Res.Entry.str(), {W.num(2)}));
  expectValueEq(R, W.num(256));
}

TEST(Spec, StaticComputationDisappears) {
  // Everything static evaluates away: the residual body is a constant.
  World W;
  const char *Src = "(define (f s d) (+ d (* s (+ s 1))))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "f", "SD"));
  std::optional<vm::Value> Args[] = {W.num(6), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  std::string Printed = Res.Residual.print();
  EXPECT_NE(Printed.find("42"), std::string::npos) << Printed;
  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(), {W.num(1)}));
  expectValueEq(R, W.num(43));
}

TEST(Spec, DynamicConditionalDuplicatesContinuation) {
  World W;
  const char *Src =
      "(define (f s d) (+ s (if (zero? d) 1 2)))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "f", "SD"));
  std::optional<vm::Value> Args[] = {W.num(10), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));

  PECOMP_UNWRAP(R0, W.evalCall(Res.Residual, Res.Entry.str(), {W.num(0)}));
  expectValueEq(R0, W.num(11));
  PECOMP_UNWRAP(R1, W.evalCall(Res.Residual, Res.Entry.str(), {W.num(9)}));
  expectValueEq(R1, W.num(12));
}

TEST(Spec, MemoizationSharesSpecializations) {
  // Two call sites with the same static argument share one residual
  // function; different static arguments get different ones.
  World W;
  const char *Src =
      "(define (f s d) (if (zero? d) (* s d) (f s (- d 1))))"
      "(define (main d) (+ (f 3 d) (+ (f 3 d) (f 4 d))))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "main", "D"));
  std::optional<vm::Value> Args[] = {std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));

  // main + f@3 + f@4 = 3 residual functions.
  EXPECT_EQ(Res.Residual.Defs.size(), 3u) << Res.Residual.print();

  PECOMP_UNWRAP(R, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(2)}));
  expectValueEq(R, W.num(0));
}

TEST(Spec, RecursiveDynamicLoopTerminatesViaMemo) {
  World W;
  const char *Src =
      "(define (loop s d) (if (zero? d) s (loop (+ s 0) (- d 1))))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "loop", "SD"));
  std::optional<vm::Value> Args[] = {W.num(99), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  PECOMP_UNWRAP(R, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(5)}));
  expectValueEq(R, W.num(99));
}

TEST(Spec, StaticInfiniteUnfoldingIsCaught) {
  // A static loop that never terminates: the depth guard must kick in
  // rather than hanging (the PE termination problem).
  World W;
  const char *Src = "(define (f s d) (if (zero? s) d (f s d)))";
  pgg::PggOptions Opts;
  Opts.Spec.MaxUnfoldDepth = 100;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(W.Heap, Src, "f", "SD",
                                                      Opts));
  std::optional<vm::Value> Args[] = {W.num(1), std::nullopt};
  Result<pgg::ResidualSource> R = Gen->generateSource(Args);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("depth limit"), std::string::npos);
}

TEST(Spec, ForceMemoBreaksStaticLoops) {
  // The same program specializes fine when the user marks the function as
  // a specialization point.
  World W;
  const char *Src = "(define (f s d) (if (zero? s) d (f s d)))";
  pgg::PggOptions Opts;
  Opts.Bta.ForceMemo.insert(Symbol::intern("f"));
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(W.Heap, Src, "f", "SD",
                                                      Opts));
  std::optional<vm::Value> Args[] = {W.num(1), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  // The residual program is an infinite loop — but *specialization*
  // terminated, producing a recursive residual function.
  EXPECT_GE(Res.Residual.Defs.size(), 1u);
}

TEST(Spec, MissingStaticValueIsAnError) {
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::powerProgram(), "power", "DS"));
  std::optional<vm::Value> Args[] = {std::nullopt, std::nullopt};
  Result<pgg::ResidualSource> R = Gen->generateSource(Args);
  ASSERT_FALSE(R.ok());
}

TEST(Spec, EntryPromotionEmbedsExtraStatics) {
  // Supplying a value for a declared-dynamic parameter embeds it.
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::powerProgram(), "power", "DS"));
  std::optional<vm::Value> Args[] = {W.num(2), W.num(10)};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(), {}));
  expectValueEq(R, W.num(1024));
}

TEST(Spec, BtaRejectsFirstClassGlobalReference) {
  World W;
  const char *Src = "(define (f x) x)"
                    "(define (main d) (let ((g f)) (g d)))";
  Result<std::unique_ptr<pgg::GeneratingExtension>> Gen =
      pgg::GeneratingExtension::create(W.Heap, Src, "main", "D");
  ASSERT_FALSE(Gen.ok());
  EXPECT_NE(Gen.error().message().find("first-class"), std::string::npos);
}

TEST(Spec, LazyThunksResidualizeAsClosures) {
  // Dynamic lambdas: residual code contains closures (thunks), and
  // call-by-name semantics survive specialization.
  World W;
  const char *Src =
      "(define (force th) (th))"
      "(define (choose c a b) (if c (a) (b)))"
      "(define (main s d)"
      "  (choose (zero? d)"
      "          (lambda () s)"
      "          (lambda () (quotient s d))))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "main", "SD"));
  std::optional<vm::Value> Args[] = {W.num(100), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  PECOMP_UNWRAP(R0, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(0)}));
  expectValueEq(R0, W.num(100));
  PECOMP_UNWRAP(R4, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(4)}));
  expectValueEq(R4, W.num(25));
}

} // namespace
