//===- tests/LambdaLiftTest.cpp - Lambda lifting unit tests ----------------===//

#include "TestUtil.h"

#include "frontend/LambdaLift.h"
#include "support/Casting.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

/// Counts lambda expressions remaining anywhere in the program.
size_t countLambdas(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return 0;
  case Expr::Kind::Lambda:
    return 1 + countLambdas(cast<LambdaExpr>(E)->body());
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    return countLambdas(L->init()) + countLambdas(L->body());
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    return countLambdas(I->test()) + countLambdas(I->thenBranch()) +
           countLambdas(I->elseBranch());
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    size_t N = countLambdas(A->callee());
    for (const Expr *Arg : A->args())
      N += countLambdas(Arg);
    return N;
  }
  case Expr::Kind::PrimApp: {
    size_t N = 0;
    for (const Expr *Arg : cast<PrimAppExpr>(E)->args())
      N += countLambdas(Arg);
    return N;
  }
  case Expr::Kind::Set:
    return countLambdas(cast<SetExpr>(E)->value());
  }
  return 0;
}

size_t countLambdas(const Program &P) {
  size_t N = 0;
  for (const Definition &D : P.Defs)
    N += countLambdas(D.Fn->body()); // exclude the definitions themselves
  return N;
}

struct LiftCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  std::vector<int64_t> Args;
  size_t ExpectedLifted;
};

const LiftCase LiftCases[] = {
    {"direct_called_closure",
     "(define (f x) (let ((g (lambda (y) (+ y x)))) (g 10)))", "f", {5}, 1},
    {"capture_chain",
     "(define (f a) (let ((g (lambda (x) (+ x a))))"
     "  (let ((h (lambda (y) (g (* y 2))))) (h 3))))",
     "f", {100}, 2},
    {"multiple_calls",
     "(define (f x) (let ((sq (lambda (n) (* n n))))"
     "  (+ (sq x) (sq (+ x 1)))))",
     "f", {4}, 1},
    {"no_free_vars",
     "(define (f x) (let ((inc (lambda (n) (+ n 1)))) (inc (inc x))))", "f",
     {10}, 1},
    {"escaping_lambda_kept",
     "(define (apply1 g x) (g x))"
     "(define (f x) (let ((g (lambda (y) (+ y 1)))) (apply1 g x)))",
     "f", {7}, 0},
    {"arity_mismatch_never_happens_but_misuse_kept",
     "(define (f x) (let ((g (lambda (y) y))) (if (procedure? g) 1 (g x))))",
     "f", {3}, 0},
    {"call_inside_inner_lambda",
     "(define (apply1 g x) (g x))"
     "(define (f a b) (let ((add (lambda (x) (+ x a))))"
     "  (apply1 (lambda (y) (add (* y 2))) b)))",
     "f", {10, 3}, 1},
};

class LambdaLiftCase : public ::testing::TestWithParam<LiftCase> {};

TEST_P(LambdaLiftCase, SemanticsPreservedAndLambdasLifted) {
  const LiftCase &C = GetParam();
  World W;
  PECOMP_UNWRAP(P, W.parse(C.Source));

  LambdaLiftStats Stats;
  Program Lifted = liftLambdas(P, W.Exprs, &Stats);
  EXPECT_EQ(Stats.Lifted, C.ExpectedLifted);

  std::vector<vm::Value> Args;
  for (int64_t A : C.Args)
    Args.push_back(W.num(A));

  PECOMP_UNWRAP(Before, W.evalCall(P, C.Fn, Args));
  PECOMP_UNWRAP(After, W.evalCall(Lifted, C.Fn, Args));
  expectValueEq(Before, After);

  // The lifted program also compiles and runs identically.
  PECOMP_UNWRAP(Compiled, W.runAnf(Lifted, C.Fn, Args));
  expectValueEq(Compiled, Before);
}

INSTANTIATE_TEST_SUITE_P(Frontend, LambdaLiftCase,
                         ::testing::ValuesIn(LiftCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(LambdaLiftTest, LiftedLambdasDisappearFromBodies) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f x) (let ((g (lambda (y) (+ y x)))) (g 10)))"));
  Program Lifted = liftLambdas(P, W.Exprs);
  EXPECT_EQ(countLambdas(Lifted), 0u);
  EXPECT_EQ(Lifted.Defs.size(), 2u);
}

TEST(LambdaLiftTest, EscapingLambdasKeepClosures) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (lambda (y) (+ x y)))"));
  Program Lifted = liftLambdas(P, W.Exprs);
  EXPECT_EQ(countLambdas(Lifted), 1u);
  EXPECT_EQ(Lifted.Defs.size(), 1u);
}

TEST(LambdaLiftTest, BoxedStateIsSharedThroughLifting) {
  // The lifted function receives the *box*, so mutation stays shared.
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f)"
      "  (let ((n 0))"
      "    (let ((bump (lambda () (set! n (+ n 1)))))"
      "      (begin (bump) (bump) n))))"));
  Program Lifted = liftLambdas(P, W.Exprs);
  PECOMP_UNWRAP(R, W.runAnf(Lifted, "f", {}));
  expectValueEq(R, W.num(2));
}

TEST(LambdaLiftTest, InteractsWithPartialEvaluation) {
  // Lifting before specialization must not change residual behaviour.
  World W;
  const char *Src =
      "(define (f s d) (let ((scale (lambda (k) (* k s)))) "
      "(+ (scale 2) (scale d))))";
  PECOMP_UNWRAP(P, W.parse(Src));
  Program Lifted = liftLambdas(P, W.Exprs);
  std::string LiftedText = Lifted.print();

  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, LiftedText, "f",
                                                 "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.num(10), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  PECOMP_UNWRAP(R, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(7)}));
  expectValueEq(R, W.num(90));
}

} // namespace
