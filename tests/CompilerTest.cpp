//===- tests/CompilerTest.cpp - Compiler unit tests ------------------------===//

#include "TestUtil.h"

#include "compiler/DirectAnfCompiler.h"
#include "frontend/AnfConvert.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

// -- Direct emission vs. fragments + assembly ---------------------------------

struct CompileCase {
  const char *Name;
  const char *Source;
};

const CompileCase CompileCases[] = {
    {"trivial", "(define (f x) x)"},
    {"constant", "(define (f x) 42)"},
    {"prim_tail", "(define (f x y) (+ x y))"},
    {"let_chain",
     "(define (f x) (let ((a (+ x 1))) (let ((b (* a a))) (- b a))))"},
    {"conditionals",
     "(define (f x) (if (zero? x) 'z (if (> x 0) 'p 'n)))"},
    {"calls",
     "(define (g x) (+ x 1))(define (f x) (g (g x)))"},
    {"tail_calls", "(define (f x) (if (zero? x) 0 (f (- x 1))))"},
    {"closures",
     "(define (f x) (let ((g (lambda (y) (+ x y)))) (g 10)))"},
    {"nested_closures",
     "(define (f a) (lambda (b) (lambda (c) (+ a (+ b c)))))"},
    {"quoted_structure", "(define (f) '(1 (2 3) \"s\"))"},
    {"repeated_literals", "(define (f x) (+ (+ x 7) (+ x 7)))"},
};

class DirectVsFragment : public ::testing::TestWithParam<CompileCase> {};

TEST_P(DirectVsFragment, ByteIdenticalCodeObjects) {
  // The direct byte emitter is an optimization of the fragment path; the
  // object code must be byte-for-byte the same.
  World W;
  PECOMP_UNWRAP(P, W.parse(GetParam().Source));
  Program Anf = anfConvert(P, W.Exprs);

  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators Comp(StoreA, GlobalsA);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram Fragments = AC.compileProgram(Anf);

  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::DirectAnfCompiler DC(StoreB, GlobalsB);
  compiler::CompiledProgram Direct = DC.compileProgram(Anf);

  ASSERT_EQ(Fragments.Defs.size(), Direct.Defs.size());
  for (size_t I = 0; I != Fragments.Defs.size(); ++I)
    EXPECT_TRUE(
        vm::codeEquals(Fragments.Defs[I].second, Direct.Defs[I].second))
        << "definition #" << I << "\n--- fragments:\n"
        << Fragments.Defs[I].second->disassemble() << "--- direct:\n"
        << Direct.Defs[I].second->disassemble();
}

INSTANTIATE_TEST_SUITE_P(Compiler, DirectVsFragment,
                         ::testing::ValuesIn(CompileCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

// -- Stock compiler specifics ----------------------------------------------------

TEST(StockCompilerTest, NonTailLetCleansTheStack) {
  // Values bound by lets in non-tail position must be squeezed out
  // (Slide); deep non-tail nesting would otherwise leak stack slots.
  World W;
  std::string Source = "(define (f x) (+ ";
  // (+ (let (a ..) a) (let (b ..) b)) nested several levels deep.
  Source += "(let ((a (+ x 1))) (let ((b (+ a 1))) (+ a b)))";
  Source += " (let ((c (* x 2))) c)))";
  PECOMP_UNWRAP(P, W.parse(Source));
  PECOMP_UNWRAP(R, W.runStock(P, "f", {W.num(10)}));
  expectValueEq(R, W.num(43)); // (11 + 12) + 20
}

TEST(StockCompilerTest, IfInNonTailPositionJoins) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (* 2 (if (> x 0) x (- 0 x))))"));
  PECOMP_UNWRAP(Pos, W.runStock(P, "f", {W.num(21)}));
  expectValueEq(Pos, W.num(42));
  PECOMP_UNWRAP(Neg, W.runStock(P, "f", {W.num(-21)}));
  expectValueEq(Neg, W.num(42));
}

TEST(StockCompilerTest, HandlesArbitraryNesting) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f x) (+ (if (zero? (remainder x 2)) (let ((h (quotient x 2)))"
      " (* h h)) (+ (* 3 x) 1)) (if (> x 100) 1 0)))"));
  PECOMP_UNWRAP(R1, W.runStock(P, "f", {W.num(10)}));
  expectValueEq(R1, W.num(25));
  PECOMP_UNWRAP(R2, W.runStock(P, "f", {W.num(7)}));
  expectValueEq(R2, W.num(22));
}

// -- Closure capture -----------------------------------------------------------------

TEST(ClosureTest, CapturesLocalsAndParameters) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f a) (let ((b (* a 10))) (lambda (c) (+ a (+ b c)))))"
      "(define (go a c) ((f a) c))"));
  PECOMP_UNWRAP(R, W.runAnf(P, "go", {W.num(1), W.num(100)}));
  expectValueEq(R, W.num(111));
}

TEST(ClosureTest, CapturesThroughNestedLambdas) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f a) (lambda (b) (lambda (c) (+ a (+ b c)))))"
      "(define (go) (((f 100) 20) 3))"));
  PECOMP_UNWRAP(R, W.runStock(P, "go", {}));
  expectValueEq(R, W.num(123));
  PECOMP_UNWRAP(R2, W.runAnf(P, "go", {}));
  expectValueEq(R2, W.num(123));
}

TEST(ClosureTest, GlobalReferencesAreNotCaptured) {
  // A lambda referring to a top-level function uses GlobalRef, not a
  // capture: its code object must have zero captured values.
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (h x) (+ x 1))"
                           "(define (f) (lambda (y) (h y)))"));
  Program Anf = anfConvert(P, W.Exprs);
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(Anf);
  const vm::CodeObject *F = CP.find(Symbol::intern("f"));
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->children().size(), 1u);
  std::string Dis = F->disassemble();
  EXPECT_NE(Dis.find("captures=0"), std::string::npos) << Dis;
}

// -- Global table ----------------------------------------------------------------------

TEST(GlobalTableTest, LookupOrAddIsStable) {
  vm::GlobalTable T;
  uint16_t A = T.lookupOrAdd(Symbol::intern("a"));
  uint16_t B = T.lookupOrAdd(Symbol::intern("b"));
  EXPECT_NE(A, B);
  EXPECT_EQ(T.lookupOrAdd(Symbol::intern("a")), A);
  EXPECT_EQ(*T.lookup(Symbol::intern("b")), B);
  EXPECT_FALSE(T.lookup(Symbol::intern("c")).has_value());
  EXPECT_EQ(T.name(A), Symbol::intern("a"));
}

TEST(GlobalTableTest, UndefinedGlobalIsARuntimeError) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f) (mystery))"));
  // "mystery" is not defined anywhere; compilation succeeds (late
  // binding), execution reports the undefined global.
  Result<vm::Value> R = W.runStock(P, "f", {});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("undefined global"), std::string::npos);
}

// -- Fragment assembly --------------------------------------------------------------------

TEST(FragmentTest, JumpTargetsResolveAcrossNestedIfs) {
  // Deeply nested conditionals exercise label resolution in both
  // directions.
  World W;
  std::string Source = "(define (f x) ";
  for (int I = 0; I != 20; ++I)
    Source += "(if (= x " + std::to_string(I) + ") " + std::to_string(I * 10) +
              " ";
  Source += "-1";
  Source += std::string(20, ')');
  Source += ")";
  PECOMP_UNWRAP(P, W.parse(Source));
  PECOMP_UNWRAP(R0, W.runAnf(P, "f", {W.num(0)}));
  expectValueEq(R0, W.num(0));
  PECOMP_UNWRAP(R7, W.runAnf(P, "f", {W.num(7)}));
  expectValueEq(R7, W.num(70));
  PECOMP_UNWRAP(R19, W.runAnf(P, "f", {W.num(19)}));
  expectValueEq(R19, W.num(190));
  PECOMP_UNWRAP(RMiss, W.runAnf(P, "f", {W.num(99)}));
  expectValueEq(RMiss, W.value("-1"));
}

TEST(FragmentTest, LiteralsAreDedupedStructurally) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f) (cons '(a b) (cons '(a b) '())))"));
  Program Anf = anfConvert(P, W.Exprs);
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(Anf);
  // '(a b) twice and '() once; '(a b) shares a slot.
  EXPECT_EQ(CP.Defs[0].second->literals().size(), 2u)
      << CP.Defs[0].second->disassemble();
}

TEST(FragmentTest, FragmentCountingWorks) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) (+ x 1))"));
  Program Anf = anfConvert(P, W.Exprs);
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  AC.compileProgram(Anf);
  EXPECT_GT(Comp.frags().fragmentsCreated(), 0u);
  EXPECT_EQ(Comp.codeObjectsBuilt(), 1u);
}

// -- Machine/compiler integration: deep recursion ---------------------------------------------

TEST(IntegrationTest, NonTailRecursionUsesVmStackNotCppStack) {
  // 100k-deep non-tail recursion: the VM's frame vector grows, the C++
  // stack does not.
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (sum n) (if (zero? n) 0 "
                           "(+ n (sum (- n 1)))))"));
  PECOMP_UNWRAP(R, W.runAnf(P, "sum", {W.num(100000)}));
  expectValueEq(R, W.num(5000050000));
}

TEST(IntegrationTest, MutualRecursionAcrossGlobals) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (a n acc) (if (zero? n) acc (b (- n 1) (+ acc 1))))"
      "(define (b n acc) (if (zero? n) acc (a (- n 1) (+ acc 2))))"
      "(define (go n) (a n 0))"));
  PECOMP_UNWRAP(R, W.runStock(P, "go", {W.num(10)}));
  expectValueEq(R, W.num(15));
}

} // namespace
