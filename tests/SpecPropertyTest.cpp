//===- tests/SpecPropertyTest.cpp - Property sweeps over the PE ------------===//
///
/// \file
/// Parameterized property sweeps of the central correctness statement
/// (mix equation): for program p, static s, dynamic d,
///
///     run(specialize(p, s), d) == eval(p, s, d)
///
/// swept over grids of static and dynamic inputs, on both residual paths,
/// plus residual-ANF and fusion (byte-equality) invariants at every
/// point.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "syntax/AnfCheck.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

// -- power: sweep the static exponent and the dynamic base -------------------

class PowerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PowerSweep, MixEquationHolds) {
  int N = GetParam();
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::powerProgram(), "power", "DS"));
  std::optional<vm::Value> SpecArgs[] = {std::nullopt, W.num(N)};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  EXPECT_FALSE(checkAnf(Res.Residual));

  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, SpecArgs));

  PECOMP_UNWRAP(P, W.parse(workloads::powerProgram()));
  for (int64_t X : {-3, -1, 0, 1, 2, 5}) {
    PECOMP_UNWRAP(Expected, W.evalCall(P, "power", {W.num(X), W.num(N)}));
    PECOMP_UNWRAP(ViaSource, W.runAnf(Res.Residual, Res.Entry.str(),
                                      {W.num(X)}));
    expectValueEq(ViaSource, Expected);
    PECOMP_UNWRAP(ViaObject, W.runCompiled(Globals, Obj.Residual, Obj.Entry,
                                           {W.num(X)}));
    expectValueEq(ViaObject, Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Spec, PowerSweep, ::testing::Range(0, 9));

// -- dot product: sweep the static vector --------------------------------------

class DotSweep : public ::testing::TestWithParam<int> {};

TEST_P(DotSweep, MixEquationHoldsForAllLengths) {
  int Len = GetParam();
  World W;

  std::string StaticVec = "(";
  std::string DynVec = "(";
  for (int I = 0; I != Len; ++I) {
    StaticVec += std::to_string((I * 5 + 2) % 7 - 3) + " ";
    DynVec += std::to_string(I * I + 1) + " ";
  }
  StaticVec += ")";
  DynVec += ")";

  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::dotProductProgram(), "dot",
                         "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.value(StaticVec), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  EXPECT_FALSE(checkAnf(Res.Residual));

  PECOMP_UNWRAP(P, W.parse(workloads::dotProductProgram()));
  PECOMP_UNWRAP(Expected,
                W.evalCall(P, "dot", {W.value(StaticVec), W.value(DynVec)}));
  PECOMP_UNWRAP(Actual,
                W.runAnf(Res.Residual, Res.Entry.str(), {W.value(DynVec)}));
  expectValueEq(Actual, Expected);
}

INSTANTIATE_TEST_SUITE_P(Spec, DotSweep, ::testing::Range(0, 8));

// -- loops with mixed static/dynamic accumulators -------------------------------

struct LoopCase {
  int64_t S;
  int64_t D;
};

class LoopSweep : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopSweep, MemoizedLoopAgrees) {
  const LoopCase &C = GetParam();
  World W;
  const char *Src =
      "(define (loop s d acc)"
      "  (if (zero? d) (+ acc s) (loop (* s 1) (- d 1) (+ acc d))))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "loop", "SDD"));
  std::optional<vm::Value> SpecArgs[] = {W.num(C.S), std::nullopt,
                                         std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));

  PECOMP_UNWRAP(P, W.parse(Src));
  PECOMP_UNWRAP(Expected, W.evalCall(P, "loop",
                                     {W.num(C.S), W.num(C.D), W.num(0)}));
  PECOMP_UNWRAP(Actual, W.runAnf(Res.Residual, Res.Entry.str(),
                                 {W.num(C.D), W.num(0)}));
  expectValueEq(Actual, Expected);
}

INSTANTIATE_TEST_SUITE_P(Spec, LoopSweep,
                         ::testing::Values(LoopCase{0, 0}, LoopCase{0, 5},
                                           LoopCase{3, 1}, LoopCase{7, 10},
                                           LoopCase{-2, 4}, LoopCase{100, 2}));

// -- fusion invariant over a family of generated programs ------------------------

class FusionSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusionSweep, ByteEqualityOverGeneratedPrograms) {
  // A family of programs with varying mixes of static/dynamic work.
  int K = GetParam();
  World W;
  std::string Src = "(define (f s d) ";
  for (int I = 0; I != K; ++I)
    Src += "(+ (* s " + std::to_string(I + 1) + ") (if (> d " +
           std::to_string(I) + ") ";
  Src += "d";
  for (int I = 0; I != K; ++I)
    Src += " s))";
  Src += ")";

  PECOMP_UNWRAP(Gen1,
                pgg::GeneratingExtension::create(W.Heap, Src, "f", "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.num(3), std::nullopt};
  PECOMP_UNWRAP(Res, Gen1->generateSource(SpecArgs));

  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators CompA(StoreA, GlobalsA);
  compiler::AnfCompiler AC(CompA);
  compiler::CompiledProgram FromSource = AC.compileProgram(Res.Residual);

  PECOMP_UNWRAP(Gen2,
                pgg::GeneratingExtension::create(W.Heap, Src, "f", "SD"));
  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::Compilators CompB(StoreB, GlobalsB);
  PECOMP_UNWRAP(Obj, Gen2->generateObject(CompB, SpecArgs));

  ASSERT_EQ(FromSource.Defs.size(), Obj.Residual.Defs.size());
  for (size_t I = 0; I != FromSource.Defs.size(); ++I)
    EXPECT_TRUE(vm::codeEquals(FromSource.Defs[I].second,
                               Obj.Residual.Defs[I].second));

  // And both compute what the original does.
  PECOMP_UNWRAP(P, W.parse(Src));
  for (int64_t D : {-1, 0, 1, 2, 5}) {
    PECOMP_UNWRAP(Expected, W.evalCall(P, "f", {W.num(3), W.num(D)}));
    PECOMP_UNWRAP(R1, W.runCompiled(GlobalsA, FromSource, Res.Entry,
                                    {W.num(D)}));
    expectValueEq(R1, Expected);
    PECOMP_UNWRAP(R2, W.runCompiled(GlobalsB, Obj.Residual, Obj.Entry,
                                    {W.num(D)}));
    expectValueEq(R2, Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Spec, FusionSweep, ::testing::Range(0, 6));

// -- Termination guards -----------------------------------------------------------

TEST(SpecGuards, UnboundedStaticDataUnderDynamicControlIsCaught) {
  // The static argument grows on every memoized recursion, so every memo
  // key is new: infinitely many residual functions. The guard must turn
  // this into an error, not a crash.
  World W;
  const char *Src =
      "(define (loop s d) (if (zero? d) s (loop (+ s 1) (- d 1))))";
  pgg::PggOptions Opts;
  Opts.Spec.MaxResidualFunctions = 50;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(W.Heap, Src, "loop",
                                                      "SD", Opts));
  std::optional<vm::Value> SpecArgs[] = {W.num(0), std::nullopt};
  Result<pgg::ResidualSource> R = Gen->generateSource(SpecArgs);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("unbounded static data"),
            std::string::npos);
}

TEST(SpecGuards, ConfiguredDepthLimitFiresCleanly) {
  // With a small configured limit, deep static recursion produces the
  // depth-limit error — never a crash.
  World W;
  vm::RootScope Scope(W.Heap);
  vm::Value &List = Scope.protect(vm::Value::nil());
  for (int I = 0; I != 10000; ++I)
    List = W.Heap.pair(vm::Value::fixnum(I), List);
  pgg::PggOptions Opts;
  Opts.Spec.MaxUnfoldDepth = 1000;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap,
                         "(define (len s d) (if (null? s) d "
                         "(len (cdr s) (+ d 0))))",
                         "len", "SD", Opts));
  std::optional<vm::Value> Args[] = {List, std::nullopt};
  Result<pgg::ResidualSource> R = Gen->generateSource(Args);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("depth limit"), std::string::npos);
}

TEST(SpecGuards, DeepUnfoldingSucceedsOnTheLargeSpecializerStack) {
  // 20000 unfolding levels: far beyond an 8 MiB thread stack's capacity
  // for the CPS specializer, comfortably inside the dedicated large
  // stack the PGG driver runs it on.
  World W;
  vm::RootScope Scope(W.Heap);
  vm::Value &List = Scope.protect(vm::Value::nil());
  for (int I = 0; I != 20000; ++I)
    List = W.Heap.pair(vm::Value::fixnum(I), List);
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap,
                         "(define (len s d) (if (null? s) d "
                         "(len (cdr s) (+ d 1))))",
                         "len", "SD"));
  std::optional<vm::Value> Args[] = {List, std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(Args));
  EXPECT_GE(Res.Stats.UnfoldedCalls, 20000u);
  // Check the 20000-let residual through the evaluator, whose let
  // handling is iterative (the tree-walking compilers would recurse on
  // the *caller's* ordinary stack).
  PECOMP_UNWRAP(R, W.evalCall(Res.Residual, Res.Entry.str(), {W.num(0)}));
  expectValueEq(R, W.num(20000));
}

TEST(SpecGuards, DeepButBoundedSpecializationSucceeds) {
  // Bounded static evolution is fine: s cycles through a finite set.
  World W;
  const char *Src = "(define (loop s d) (if (zero? d) s "
                    "(loop (remainder (+ s 1) 3) (- d 1))))";
  PECOMP_UNWRAP(Gen,
                pgg::GeneratingExtension::create(W.Heap, Src, "loop", "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.num(0), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  // One residual function per distinct static value (0, 1, 2).
  EXPECT_EQ(Res.Residual.Defs.size(), 3u) << Res.Residual.print();
  PECOMP_UNWRAP(R, W.runAnf(Res.Residual, Res.Entry.str(), {W.num(7)}));
  expectValueEq(R, W.num(1)); // 7 mod 3 steps from 0
}

} // namespace
