//===- tests/TrapTest.cpp - Structured trap model and resource governor -----===//
///
/// \file
/// The fault model of vm/Trap.h, exercised in every build configuration:
/// each runtime invariant violation must surface as a classified,
/// clean-unwinding trap (never an assert or undefined behavior), the trap
/// must carry its execution context (function, pc, opcode), and after any
/// trap the same Machine instance must run a well-formed program — the
/// recovery guarantee a serving loop depends on.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/Compilators.h"
#include "vm/Trap.h"
#include "vm/Verify.h"

using namespace pecomp;
using namespace pecomp::test;
using vm::Op;
using vm::TrapKind;
using vm::Value;

namespace {

/// Appends a little-endian u16 operand.
void emitU16(std::vector<uint8_t> &Code, uint16_t V) {
  Code.push_back(static_cast<uint8_t>(V & 0xff));
  Code.push_back(static_cast<uint8_t>(V >> 8));
}

class TrapTest : public ::testing::Test {
protected:
  TrapTest() : Store(W.Heap), M(W.Heap) {}

  /// Hand-assembles a code object from raw bytes (bypassing the verifier:
  /// these tests prove the machine survives code the verifier would
  /// reject).
  const vm::CodeObject *raw(const char *Name, uint32_t Arity,
                            std::vector<uint8_t> Bytes,
                            std::vector<Value> Literals = {}) {
    vm::CodeObject *Code = Store.create(Name, Arity);
    Code->mutableCode() = std::move(Bytes);
    for (Value V : Literals)
      Code->addLiteral(V);
    return Code;
  }

  /// Expects \p R to be a trap of kind \p K whose message contains
  /// \p Substring, and checks Error::code() agrees with lastTrap().
  void expectTrap(const Result<Value> &R, TrapKind K,
                  const char *Substring) {
    ASSERT_FALSE(R.ok()) << "expected a " << vm::trapKindName(K) << " trap";
    EXPECT_EQ(vm::trapKindOf(R.error()), K) << R.error().render();
    EXPECT_NE(R.error().message().find(Substring), std::string::npos)
        << R.error().message();
    ASSERT_TRUE(M.lastTrap().has_value());
    EXPECT_EQ(M.lastTrap()->Kind, K);
  }

  /// The recovery guarantee: the same machine runs a well-formed program
  /// after whatever the test just did to it.
  void expectMachineStillWorks() {
    const vm::CodeObject *Ok = raw(
        "ok", 0,
        [] {
          std::vector<uint8_t> B;
          B.push_back(static_cast<uint8_t>(Op::Const));
          emitU16(B, 0);
          B.push_back(static_cast<uint8_t>(Op::Return));
          return B;
        }(),
        {Value::fixnum(42)});
    Result<Value> R = M.call(M.makeProcedure(Ok), {});
    ASSERT_TRUE(R.ok()) << R.error().render();
    expectValueEq(*R, Value::fixnum(42));
  }

  World W;
  vm::CodeStore Store;
  vm::Machine M;
};

// -- Trap classification and context ------------------------------------------------------

TEST_F(TrapTest, UndefinedGlobalTrapsWithContext) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::GlobalRef));
  emitU16(B, 500); // never defined
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R = M.call(M.makeProcedure(raw("g-undef", 0, std::move(B))), {});
  expectTrap(R, TrapKind::UndefinedGlobal, "undefined global");
  EXPECT_EQ(M.lastTrap()->Function, "g-undef");
  EXPECT_EQ(M.lastTrap()->PC, 0u);
  EXPECT_EQ(M.lastTrap()->Opcode, static_cast<int>(Op::GlobalRef));
  expectMachineStillWorks();
}

TEST_F(TrapTest, CallingAnUnsetGlobalSlotTraps) {
  // getGlobal of a slot that was never allocated yields the invalid
  // value; calling it is a trap, not an assert.
  Result<Value> R = M.call(M.getGlobal(999), {});
  expectTrap(R, TrapKind::UndefinedGlobal, "undefined global");
  expectMachineStillWorks();
}

TEST_F(TrapTest, CallingANonProcedureTraps) {
  Result<Value> R = M.call(Value::fixnum(7), {});
  expectTrap(R, TrapKind::TypeError, "not a procedure");
  expectMachineStillWorks();
}

TEST_F(TrapTest, EntryArityMismatchTraps) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::LocalRef));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Return));
  const vm::CodeObject *Two = raw("two", 2, std::move(B));
  Result<Value> R = M.call(M.makeProcedure(Two), {{Value::fixnum(1)}});
  expectTrap(R, TrapKind::ArityMismatch, "expects 2");
  expectMachineStillWorks();
}

TEST_F(TrapTest, RunningOffTheEndTraps) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0); // no Return: pc runs off the end
  Result<Value> R = M.call(
      M.makeProcedure(raw("off-end", 0, std::move(B), {Value::fixnum(1)})),
      {});
  expectTrap(R, TrapKind::PcOutOfRange, "outside code");
  expectMachineStillWorks();
}

TEST_F(TrapTest, TruncatedOperandsTrap) {
  // A Const opcode with only one of its two operand bytes.
  Result<Value> R = M.call(
      M.makeProcedure(raw("trunc", 0,
                          {static_cast<uint8_t>(Op::Const), 0x00})),
      {});
  expectTrap(R, TrapKind::PcOutOfRange, "truncated");
  expectMachineStillWorks();
}

TEST_F(TrapTest, UnknownOpcodeTraps) {
  Result<Value> R = M.call(M.makeProcedure(raw("bad-op", 0, {0xff})), {});
  expectTrap(R, TrapKind::IllegalInstruction, "unknown opcode");
  expectMachineStillWorks();
}

TEST_F(TrapTest, LiteralIndexOutOfRangeTraps) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 9); // literal table is empty
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R = M.call(M.makeProcedure(raw("bad-lit", 0, std::move(B))), {});
  expectTrap(R, TrapKind::IllegalInstruction, "literal index");
  expectMachineStillWorks();
}

TEST_F(TrapTest, StackUnderflowInPrimTraps) {
  // Add needs two operands; the stack holds none of them.
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Prim));
  B.push_back(static_cast<uint8_t>(PrimOp::Add));
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R = M.call(M.makeProcedure(raw("underflow", 0, std::move(B))), {});
  expectTrap(R, TrapKind::StackUnderflow, "stack underflow");
  expectMachineStillWorks();
}

TEST_F(TrapTest, WildJumpIsCaughtAtNextDispatch) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Jump));
  emitU16(B, 0x4000); // far past the end
  Result<Value> R = M.call(M.makeProcedure(raw("wild", 0, std::move(B))), {});
  expectTrap(R, TrapKind::PcOutOfRange, "outside code");
  expectMachineStillWorks();
}

TEST_F(TrapTest, DivideByZeroTrapsWithPrimContext) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 1);
  B.push_back(static_cast<uint8_t>(Op::Prim));
  B.push_back(static_cast<uint8_t>(PrimOp::Quotient));
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R = M.call(
      M.makeProcedure(raw("div", 0, std::move(B),
                          {Value::fixnum(1), Value::fixnum(0)})),
      {});
  expectTrap(R, TrapKind::DivideByZero, "division by zero");
  EXPECT_EQ(M.lastTrap()->Function, "div");
  EXPECT_EQ(M.lastTrap()->Opcode, static_cast<int>(Op::Prim));
  expectMachineStillWorks();
}

TEST_F(TrapTest, TypeErrorNamesTheOffendingValue) {
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Prim));
  B.push_back(static_cast<uint8_t>(PrimOp::Car));
  B.push_back(static_cast<uint8_t>(Op::Return));
  Result<Value> R = M.call(
      M.makeProcedure(raw("car5", 0, std::move(B), {Value::fixnum(5)})), {});
  expectTrap(R, TrapKind::TypeError, "expected a pair");
  EXPECT_NE(R.error().message().find("fixnum 5"), std::string::npos);
  expectMachineStillWorks();
}

// -- Resource governor ---------------------------------------------------------------------

/// Compiles \p Source with the ANF compiler and links it into \p M.
void compileInto(World &W, vm::Machine &M, vm::GlobalTable &Globals,
                 vm::CodeStore &Store, const std::string &Source) {
  auto P = W.parseAnf(Source);
  ASSERT_TRUE(P.ok()) << P.error().render();
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(*P);
  auto Linked = compiler::linkProgramVerified(M, Globals, CP);
  ASSERT_TRUE(Linked.ok()) << Linked.error().render();
}

TEST_F(TrapTest, HeapCeilingTrapsAndMachineRecovers) {
  vm::GlobalTable Globals;
  compileInto(W, M, Globals, Store,
              "(define (blow n) (if (zero? n) '() (cons n (blow (- n 1)))))"
              "(define (ok x) (+ x 1))");
  if (HasFatalFailure())
    return;

  vm::Limits Lim;
  Lim.MaxHeapBytes = 256 * 1024;
  Lim.Fuel = 50'000'000;
  M.setLimits(Lim);

  // 100k pairs is ~3 MB live — far over the 256 KB ceiling.
  Result<Value> R = compiler::callGlobal(
      M, Globals, Symbol::intern("blow"), {{Value::fixnum(100000)}});
  expectTrap(R, TrapKind::HeapExhausted, "heap limit");

  // call() collected and un-faulted the heap; the ceiling stays in force
  // and a well-behaved program runs on the very same machine.
  EXPECT_FALSE(W.Heap.faulted());
  EXPECT_EQ(W.Heap.maxBytes(), 256u * 1024u);
  Result<Value> Ok = compiler::callGlobal(M, Globals, Symbol::intern("ok"),
                                          {{Value::fixnum(41)}});
  ASSERT_TRUE(Ok.ok()) << Ok.error().render();
  expectValueEq(*Ok, Value::fixnum(42));
}

TEST_F(TrapTest, FrameLimitTrapsAndMachineRecovers) {
  vm::GlobalTable Globals;
  compileInto(W, M, Globals, Store,
              "(define (down n) (if (zero? n) 0 (+ 1 (down (- n 1)))))");
  if (HasFatalFailure())
    return;

  vm::Limits Lim;
  Lim.MaxFrames = 64;
  Lim.Fuel = 50'000'000;
  M.setLimits(Lim);

  Result<Value> R = compiler::callGlobal(M, Globals, Symbol::intern("down"),
                                         {{Value::fixnum(1000)}});
  expectTrap(R, TrapKind::FrameOverflow, "frame limit");

  // Shallow recursion on the same machine still works.
  Result<Value> Ok = compiler::callGlobal(M, Globals, Symbol::intern("down"),
                                          {{Value::fixnum(10)}});
  ASSERT_TRUE(Ok.ok()) << Ok.error().render();
  expectValueEq(*Ok, Value::fixnum(10));
}

TEST_F(TrapTest, ValueStackLimitTraps) {
  vm::GlobalTable Globals;
  compileInto(W, M, Globals, Store,
              "(define (down n) (if (zero? n) 0 (+ 1 (down (- n 1)))))");
  if (HasFatalFailure())
    return;

  vm::Limits Lim;
  Lim.MaxStackDepth = 64;
  Lim.Fuel = 50'000'000;
  M.setLimits(Lim);

  Result<Value> R = compiler::callGlobal(M, Globals, Symbol::intern("down"),
                                         {{Value::fixnum(1000)}});
  expectTrap(R, TrapKind::StackOverflow, "stack overflow");
  expectMachineStillWorks();
}

TEST_F(TrapTest, FuelExhaustionIsAClassifiedTrap) {
  vm::GlobalTable Globals;
  compileInto(W, M, Globals, Store, "(define (spin n) (spin n))");
  if (HasFatalFailure())
    return;

  M.setFuel(10'000);
  Result<Value> R = compiler::callGlobal(M, Globals, Symbol::intern("spin"),
                                         {{Value::fixnum(0)}});
  expectTrap(R, TrapKind::FuelExhausted, "fuel exhausted");
  expectMachineStillWorks();
}

TEST_F(TrapTest, FuelBudgetResetsPerCall) {
  // The documented contract: Fuel is a per-call() budget, so two
  // successive calls each get the full allowance — the first call's
  // spending must not starve the second.
  vm::GlobalTable Globals;
  compileInto(W, M, Globals, Store,
              "(define (down n) (if (zero? n) 0 (down (- n 1))))");
  if (HasFatalFailure())
    return;

  M.setFuel(5'000);
  for (int Round = 0; Round < 2; ++Round) {
    // Each call burns well over half the budget; if FuelUsed carried
    // over, the second one would trap.
    Result<Value> R = compiler::callGlobal(
        M, Globals, Symbol::intern("down"), {{Value::fixnum(400)}});
    ASSERT_TRUE(R.ok()) << "round " << Round << ": " << R.error().render();
  }

  // Exhaustion still trips within one call...
  Result<Value> Spin = compiler::callGlobal(
      M, Globals, Symbol::intern("down"), {{Value::fixnum(100000)}});
  expectTrap(Spin, TrapKind::FuelExhausted, "fuel exhausted");

  // ...and the trap does not poison the next call's budget either.
  Result<Value> After = compiler::callGlobal(
      M, Globals, Symbol::intern("down"), {{Value::fixnum(400)}});
  ASSERT_TRUE(After.ok()) << After.error().render();
}

TEST_F(TrapTest, BackEdgeOnlyLoopsStillChargeFuel) {
  // A loop made of nothing but a backward jump — no calls, no returns —
  // must exhaust fuel on both dispatch strategies: the fast loop hoists
  // the heap/stack probes but deliberately keeps fuel charged per
  // instruction, so a back-edge can never skip the meter.
  auto Build = [&](const char *Name) {
    std::vector<uint8_t> B;
    B.push_back(static_cast<uint8_t>(Op::Const));
    emitU16(B, 0);
    B.push_back(static_cast<uint8_t>(Op::Jump)); // pc 3: jump to itself
    emitU16(B, static_cast<uint16_t>(-3));
    return raw(Name, 0, std::move(B), {Value::fixnum(1)});
  };

  M.setFuel(1'000);
  Result<Value> Fast = M.call(M.makeProcedure(Build("spin-fast")), {});
  expectTrap(Fast, TrapKind::FuelExhausted, "fuel exhausted");
  vm::Trap FastTrap = *M.lastTrap();

  M.setDecodedDispatch(false);
  Result<Value> Bytes = M.call(M.makeProcedure(Build("spin-bytes")), {});
  M.setDecodedDispatch(true);
  expectTrap(Bytes, TrapKind::FuelExhausted, "fuel exhausted");

  // Identical trap context on both loops: the jump instruction's pc,
  // no opcode (governance fires before decode).
  EXPECT_EQ(FastTrap.PC, M.lastTrap()->PC);
  EXPECT_EQ(FastTrap.Opcode, M.lastTrap()->Opcode);
  EXPECT_EQ(FastTrap.Opcode, -1);
  EXPECT_EQ(FastTrap.PC, 3u);
  expectMachineStillWorks();
}

TEST_F(TrapTest, UnlimitedLimitsDisableEveryCeiling) {
  vm::Limits Lim = vm::Limits::unlimited();
  EXPECT_EQ(Lim.MaxHeapBytes, 0u);
  EXPECT_EQ(Lim.MaxStackDepth, 0u);
  EXPECT_EQ(Lim.MaxFrames, 0u);
  EXPECT_EQ(Lim.Fuel, 0u);
  M.setLimits(Lim);
  expectMachineStillWorks();
}

// -- Verifier stack-depth bound ------------------------------------------------------------

TEST_F(TrapTest, VerifierEnforcesAStaticStackDepthLimit) {
  // (+ 1 (+ 2 3)) needs 3 simultaneous stack slots; a limit of 2 must be
  // rejected statically, a limit of 8 accepted.
  std::vector<uint8_t> B;
  for (int I = 0; I != 3; ++I) {
    B.push_back(static_cast<uint8_t>(Op::Const));
    emitU16(B, static_cast<uint16_t>(I));
  }
  B.push_back(static_cast<uint8_t>(Op::Prim));
  B.push_back(static_cast<uint8_t>(PrimOp::Add));
  B.push_back(static_cast<uint8_t>(Op::Prim));
  B.push_back(static_cast<uint8_t>(PrimOp::Add));
  B.push_back(static_cast<uint8_t>(Op::Return));
  const vm::CodeObject *Code =
      raw("sum3", 0, std::move(B),
          {Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});

  EXPECT_FALSE(vm::verifyCode(Code, 0, 8).has_value());
  auto Err = vm::verifyCode(Code, 0, 2);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("exceeds the limit"), std::string::npos) << *Err;
}

TEST_F(TrapTest, VerifierChecksSlideDepth) {
  // Slide 2 with only one value on the stack underflows; the seed
  // verifier silently ignored Slide entirely.
  std::vector<uint8_t> B;
  B.push_back(static_cast<uint8_t>(Op::Const));
  emitU16(B, 0);
  B.push_back(static_cast<uint8_t>(Op::Slide));
  emitU16(B, 2);
  B.push_back(static_cast<uint8_t>(Op::Return));
  const vm::CodeObject *Code = raw("slide", 0, std::move(B), {Value::nil()});
  auto Err = vm::verifyCode(Code);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("underflow"), std::string::npos) << *Err;
}

// -- Heap fault injection ------------------------------------------------------------------

TEST(HeapFaultTest, FailAtNthAllocationIsSticky) {
  vm::Heap H;
  vm::FaultPlan Plan;
  Plan.FailAtAllocation = 5;
  H.setFaultPlan(Plan);
  vm::RootScope Roots(H);
  for (int I = 0; I != 4; ++I)
    Roots.protect(H.pair(Value::fixnum(I), Value::nil()));
  EXPECT_FALSE(H.faulted());
  Roots.protect(H.pair(Value::fixnum(4), Value::nil()));
  EXPECT_TRUE(H.faulted());
  EXPECT_FALSE(H.faultMessage().empty());
  // Sticky: later allocations stay faulted, and still yield usable values.
  Value V = Roots.protect(H.pair(Value::fixnum(9), Value::nil()));
  EXPECT_TRUE(V.isObject());
  EXPECT_TRUE(H.faulted());
  H.clearFault();
  EXPECT_FALSE(H.faulted());
}

TEST(HeapFaultTest, FailAboveLiveBytesWatermark) {
  vm::Heap H;
  vm::FaultPlan Plan;
  Plan.FailAboveLiveBytes = 1024;
  H.setFaultPlan(Plan);
  vm::RootScope Roots(H);
  while (!H.faulted())
    Roots.protect(H.pair(Value::fixnum(1), Value::nil()));
  EXPECT_GT(H.liveBytes(), 1024u);
  EXPECT_NE(H.faultMessage().find("above watermark"), std::string::npos)
      << H.faultMessage();
}

TEST(HeapFaultTest, ByteCeilingRecoversAfterCollect) {
  vm::Heap H;
  H.setMaxBytes(2048);
  {
    vm::RootScope Roots(H);
    while (!H.faulted())
      Roots.protect(H.pair(Value::fixnum(1), Value::nil()));
  }
  // The roots are gone; a collection frees the garbage and the fault can
  // be cleared — the heap is reusable with the ceiling still in force.
  H.collect();
  H.clearFault();
  EXPECT_FALSE(H.faulted());
  EXPECT_LT(H.liveBytes(), 2048u);
  Value V = H.pair(Value::fixnum(1), Value::nil());
  EXPECT_TRUE(V.isObject());
  EXPECT_FALSE(H.faulted());
}

TEST(HeapFaultTest, MachineSurfacesInjectedFaultAsHeapExhausted) {
  World W;
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  vm::Machine M(W.Heap);
  auto P = W.parseAnf(
      "(define (blow n) (if (zero? n) '() (cons n (blow (- n 1)))))");
  ASSERT_TRUE(P.ok()) << P.error().render();
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(*P);
  auto Linked = compiler::linkProgramVerified(M, Globals, CP);
  ASSERT_TRUE(Linked.ok()) << Linked.error().render();

  vm::FaultPlan Plan;
  Plan.FailAtAllocation = W.Heap.totalAllocations() + 50;
  W.Heap.setFaultPlan(Plan);
  M.setFuel(50'000'000);
  Result<Value> R = compiler::callGlobal(
      M, Globals, Symbol::intern("blow"), {{Value::fixnum(100000)}});
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(vm::trapKindOf(R.error()), TrapKind::HeapExhausted)
      << R.error().render();
  // call() recovered the heap; the plan's one-shot ordinal has passed.
  EXPECT_FALSE(W.Heap.faulted());
}

} // namespace
