//===- tests/PeepholeTest.cpp - Byte-code peephole optimizer tests ---------===//
///
/// \file
/// The peephole pass (compiler/Peephole.h) against its contract: each
/// rewrite fires on the idiom it names, the rewritten bytes still verify
/// and pre-decode (offsets were recomputed, nothing lands mid-instruction),
/// behavior is unchanged under both dispatch loops, the pass is idempotent
/// and refuses frozen objects, and real compiler output both triggers the
/// rewrites and keeps its answers.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/DirectAnfCompiler.h"
#include "compiler/Peephole.h"
#include "vm/Prims.h"
#include "vm/Verify.h"

using namespace pecomp;
using namespace pecomp::test;
using compiler::PeepholeStats;
using vm::Op;
using vm::Value;

namespace {

class PeepholeTest : public ::testing::Test {
protected:
  PeepholeTest() : Store(W.Heap) {}

  vm::CodeObject *raw(const char *Name, uint32_t Arity,
                      std::vector<uint8_t> Bytes,
                      std::vector<Value> Literals = {}) {
    vm::CodeObject *Code = Store.create(Name, Arity);
    Code->mutableCode() = std::move(Bytes);
    for (Value V : Literals)
      Code->addLiteral(V);
    return Code;
  }

  static void op(std::vector<uint8_t> &B, Op O) {
    B.push_back(static_cast<uint8_t>(O));
  }
  static void u16(std::vector<uint8_t> &B, uint16_t V) {
    B.push_back(static_cast<uint8_t>(V & 0xff));
    B.push_back(static_cast<uint8_t>(V >> 8));
  }
  static void i16(std::vector<uint8_t> &B, int16_t V) {
    u16(B, static_cast<uint16_t>(V));
  }

  /// Runs \p Code on a fresh machine pinned to one dispatch loop. The
  /// byte loop never touches the decode cache, so pre-rewrite runs do not
  /// freeze the bytes.
  Result<Value> run(const vm::CodeObject *Code, std::vector<Value> Args,
                    bool Decoded) {
    vm::Machine M(W.Heap);
    M.setFuel(1'000'000);
    M.setDecodedDispatch(Decoded);
    return W.pinned(M.call(M.makeProcedure(Code), Args));
  }

  /// The post-conditions every rewritten object must satisfy.
  void expectWellFormed(const vm::CodeObject *Code) {
    auto Err = vm::verifyCode(Code);
    EXPECT_FALSE(Err.has_value()) << *Err << "\n" << Code->disassemble();
    EXPECT_NE(Code->decoded(), nullptr) << Code->disassemble();
  }

  World W;
  vm::CodeStore Store;
};

TEST_F(PeepholeTest, ThreadsJumpChainsAndFoldsTerminators) {
  // Const; Jump -> Jump -> Return, with a dead Const stranded between:
  // threading retargets through the chain, the Jump-to-Return folds into
  // a Return, and the now-unreachable middle disappears.
  std::vector<uint8_t> B;
  op(B, Op::Const); // pc 0
  u16(B, 0);
  op(B, Op::Jump); // pc 3 -> pc 9
  i16(B, 3);
  op(B, Op::Const); // pc 6: unreachable
  u16(B, 1);
  op(B, Op::Jump); // pc 9 -> pc 12
  i16(B, 0);
  op(B, Op::Return); // pc 12
  vm::CodeObject *C =
      raw("chain", 0, std::move(B), {Value::fixnum(42), Value::fixnum(7)});

  PECOMP_UNWRAP(Before, run(C, {}, /*Decoded=*/false));
  PeepholeStats S = compiler::peepholeCode(C);
  EXPECT_GE(S.ThreadedJumps, 1u);
  EXPECT_GE(S.FoldedTerminators, 1u);
  EXPECT_GE(S.DeadInsns, 1u);
  EXPECT_GT(S.BytesSaved, 0u);
  // Only the straight-line answer remains: Const; Return.
  EXPECT_EQ(C->code().size(), 4u);

  expectWellFormed(C);
  PECOMP_UNWRAP(AfterBytes, run(C, {}, false));
  PECOMP_UNWRAP(AfterFast, run(C, {}, true));
  expectValueEq(Before, AfterBytes);
  expectValueEq(Before, AfterFast);
  expectValueEq(AfterFast, Value::fixnum(42));
}

TEST_F(PeepholeTest, InvertsBranchOverJump) {
  // JumpIfFalse L1 over Jump L2 where L1 is the Jump's fall-through:
  // becomes JumpIfTrue L2, and the only emitter of JumpIfTrue is here.
  std::vector<uint8_t> B;
  op(B, Op::LocalRef); // pc 0
  u16(B, 0);
  op(B, Op::JumpIfFalse); // pc 3 -> pc 9 (the false branch, fall-through
  i16(B, 3);              // of the Jump below)
  op(B, Op::Jump); // pc 6 -> pc 13 (the true branch)
  i16(B, 4);
  op(B, Op::Const); // pc 9: false arm
  u16(B, 0);
  op(B, Op::Return); // pc 12
  op(B, Op::Const); // pc 13: true arm
  u16(B, 1);
  op(B, Op::Return); // pc 16
  vm::CodeObject *C =
      raw("inv", 1, std::move(B), {Value::fixnum(10), Value::fixnum(20)});

  PECOMP_UNWRAP(TrueBefore, run(C, {Value::boolean(true)}, false));
  PECOMP_UNWRAP(FalseBefore, run(C, {Value::boolean(false)}, false));

  PeepholeStats S = compiler::peepholeCode(C);
  EXPECT_EQ(S.InvertedBranches, 1u);
  bool HasJumpIfTrue = false;
  for (uint8_t Byte : C->code())
    HasJumpIfTrue |= Byte == static_cast<uint8_t>(Op::JumpIfTrue);
  EXPECT_TRUE(HasJumpIfTrue) << C->disassemble();

  expectWellFormed(C);
  PECOMP_UNWRAP(TrueAfter, run(C, {Value::boolean(true)}, false));
  PECOMP_UNWRAP(FalseAfter, run(C, {Value::boolean(false)}, false));
  PECOMP_UNWRAP(TrueFast, run(C, {Value::boolean(true)}, true));
  PECOMP_UNWRAP(FalseFast, run(C, {Value::boolean(false)}, true));
  expectValueEq(TrueBefore, TrueAfter);
  expectValueEq(FalseBefore, FalseAfter);
  expectValueEq(TrueFast, Value::fixnum(20));
  expectValueEq(FalseFast, Value::fixnum(10));
}

TEST_F(PeepholeTest, CollapsesAdjacentSlidesAndDropsSlideZero) {
  std::vector<uint8_t> B;
  op(B, Op::Const); // pc 0
  u16(B, 0);
  op(B, Op::Const); // pc 3
  u16(B, 1);
  op(B, Op::Const); // pc 6: the surviving top value
  u16(B, 2);
  op(B, Op::Slide); // pc 9
  u16(B, 1);
  op(B, Op::Slide); // pc 12
  u16(B, 1);
  op(B, Op::Slide); // pc 15: no-op
  u16(B, 0);
  op(B, Op::Return); // pc 18
  vm::CodeObject *C =
      raw("slides", 0, std::move(B),
          {Value::fixnum(1), Value::fixnum(2), Value::fixnum(99)});

  PECOMP_UNWRAP(Before, run(C, {}, false));
  PeepholeStats S = compiler::peepholeCode(C);
  EXPECT_EQ(S.CollapsedSlides, 1u);
  EXPECT_EQ(S.DroppedSlides, 1u);
  // Const x3, one merged Slide 2, Return.
  EXPECT_EQ(C->code().size(), 13u);

  expectWellFormed(C);
  PECOMP_UNWRAP(After, run(C, {}, true));
  expectValueEq(Before, After);
  expectValueEq(After, Value::fixnum(99));
}

TEST_F(PeepholeTest, RemovesUnreachableTail) {
  std::vector<uint8_t> B;
  op(B, Op::Const); // pc 0
  u16(B, 0);
  op(B, Op::Return); // pc 3
  op(B, Op::Const); // pc 4: unreachable
  u16(B, 1);
  op(B, Op::Return); // pc 7: unreachable
  vm::CodeObject *C =
      raw("dead", 0, std::move(B), {Value::fixnum(5), Value::fixnum(6)});

  PeepholeStats S = compiler::peepholeCode(C);
  EXPECT_EQ(S.DeadInsns, 2u);
  EXPECT_EQ(S.BytesSaved, 4u);
  EXPECT_EQ(C->code().size(), 4u);
  expectWellFormed(C);
  PECOMP_UNWRAP(R, run(C, {}, true));
  expectValueEq(R, Value::fixnum(5));
}

TEST_F(PeepholeTest, RefusesFrozenObjectsAndRunsOnce) {
  std::vector<uint8_t> Bytes;
  op(Bytes, Op::Const);
  u16(Bytes, 0);
  op(Bytes, Op::Jump); // a rewrite opportunity the pass must NOT take
  i16(Bytes, 0);       // once the bytes are frozen
  op(Bytes, Op::Return);
  std::vector<uint8_t> Copy = Bytes;

  // Frozen: pre-decoding pins the byte-offset map, so the pass skips.
  vm::CodeObject *Frozen = raw("frozen", 0, std::move(Copy),
                               {Value::fixnum(1)});
  ASSERT_NE(Frozen->decoded(), nullptr);
  PeepholeStats S1 = compiler::peepholeCode(Frozen);
  EXPECT_EQ(S1.ObjectsVisited, 0u);
  EXPECT_EQ(Frozen->code().size(), 7u);

  // Fresh: processed exactly once; the second run is a no-op even though
  // the first one rewrote the code.
  vm::CodeObject *Fresh = raw("fresh", 0, std::move(Bytes),
                              {Value::fixnum(1)});
  EXPECT_FALSE(Fresh->peepholed());
  PeepholeStats S2 = compiler::peepholeCode(Fresh);
  EXPECT_EQ(S2.ObjectsVisited, 1u);
  EXPECT_TRUE(Fresh->peepholed());
  PeepholeStats S3 = compiler::peepholeCode(Fresh);
  EXPECT_EQ(S3.ObjectsVisited, 0u);
  EXPECT_EQ(S3.rewrites(), 0u);
}

/// Real compiler output: the pass must fire on it (the stock compiler's
/// nested conditionals and expression cleanup are exactly the idioms it
/// targets) and must not change any answer.
TEST_F(PeepholeTest, CompiledProgramsKeepTheirAnswers) {
  struct Case {
    const char *Source;
    const char *Fn;
    int64_t Arg;
    const char *Expected;
  };
  const Case Cases[] = {
      // Nested if in non-tail position: the inner arms' join jumps land
      // on the outer join jump — a jump-to-jump chain.
      {"(define (f x) (+ 1 (if (< x 0) (if (> x -5) 10 20) 30)))", "f", -2,
       "11"},
      // Nested lets unwound together: back-to-back Slide cleanup.
      {"(define (f x) (* 2 (let ((a (+ x 1))) (let ((b (+ a 1))) "
       "(+ a b)))))",
       "f", 3, "18"},
      // Tail-position control flow is already tight; the pass must leave
      // these answers (and ideally their bytes) alone.
      {"(define (f x) (cond ((< x 0) 'neg) ((= x 0) 'zero) (else 'pos)))",
       "f", 5, "pos"},
      {"(define (f n) (if (zero? n) 1 (* n (f (- n 1)))))", "f", 10,
       "3628800"},
  };
  size_t TotalRewrites = 0;
  for (const Case &C : Cases) {
    PECOMP_UNWRAP(P, W.parse(C.Source));
    // Both compiler back ends, since they emit different shapes.
    for (int Flavor = 0; Flavor != 2; ++Flavor) {
      vm::CodeStore S(W.Heap);
      vm::GlobalTable Globals;
      compiler::Compilators Comp(S, Globals);
      compiler::CompiledProgram CP;
      if (Flavor == 0) {
        compiler::StockCompiler SC(Comp);
        CP = SC.compileProgram(P);
      } else {
        compiler::AnfCompiler AC(Comp);
        CP = AC.compileProgram(anfConvert(P, W.Exprs));
      }

      vm::Machine M1(W.Heap);
      M1.setFuel(1'000'000);
      M1.setDecodedDispatch(false);
      compiler::linkProgram(M1, Globals, CP);
      PECOMP_UNWRAP(Before, W.pinned(compiler::callGlobal(
                                M1, Globals, Symbol::intern(C.Fn),
                                {{W.num(C.Arg)}})));

      PeepholeStats PS = compiler::peepholeProgram(CP);
      TotalRewrites += PS.rewrites();
      for (const auto &[Name, Code] : CP.Defs)
        expectWellFormed(Code);

      vm::Machine M2(W.Heap);
      M2.setFuel(1'000'000);
      compiler::linkProgram(M2, Globals, CP);
      PECOMP_UNWRAP(After, W.pinned(compiler::callGlobal(
                               M2, Globals, Symbol::intern(C.Fn),
                               {{W.num(C.Arg)}})));
      expectValueEq(Before, After);
      expectValueEq(After, W.value(C.Expected));
    }
  }
  EXPECT_GT(TotalRewrites, 0u)
      << "the pass never fired on real compiler output";
}

/// The verified link pipeline with the pass on vs. off: same answers, and
/// the flag records which objects were processed.
TEST_F(PeepholeTest, LinkPipelineParity) {
  const char *Source =
      "(define (f n) (if (zero? n) 1 (* n (f (- n 1)))))";
  for (bool Peephole : {true, false}) {
    PECOMP_UNWRAP(P, W.parseAnf(Source));
    vm::CodeStore S(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(S, Globals);
    compiler::AnfCompiler AC(Comp);
    compiler::CompiledProgram CP = AC.compileProgram(P);
    vm::Machine M(W.Heap);
    M.setFuel(1'000'000);
    compiler::LinkOptions LO;
    LO.Peephole = Peephole;
    PECOMP_UNWRAP(Linked, compiler::linkProgramVerified(M, Globals, CP, LO));
    (void)Linked;
    for (const auto &[Name, Code] : CP.Defs)
      EXPECT_EQ(Code->peepholed(), Peephole);
    PECOMP_UNWRAP(R, W.pinned(compiler::callGlobal(
                         M, Globals, Symbol::intern("f"), {{W.num(10)}})));
    expectValueEq(R, W.value("3628800"));
  }
}

} // namespace
