//===- tests/SpecCacheTest.cpp - Portable units and the spec cache --------===//
///
/// \file
/// PR 4 core guarantees: a PortableProgram round-trips byte-for-byte and
/// observationally into a *different* heap; the cache discriminates keys,
/// reports honest stats, and eviction followed by regeneration yields an
/// identical specialization.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/Link.h"
#include "pgg/SpecCache.h"

#include <atomic>
#include <thread>

using namespace pecomp;
using namespace pecomp::test;

namespace {

const char *PowerSrc = R"((define (power x n)
  (if (= n 0) 1 (* x (power x (- n 1))))))";

/// Generates object code for power specialized to n = \p N in \p W.
Result<pgg::ResidualObject> specializePower(World &W, vm::CodeStore &Store,
                                            vm::GlobalTable &Globals,
                                            int64_t N) {
  auto Gen = pgg::GeneratingExtension::create(W.Heap, PowerSrc, "power", "DS");
  if (!Gen)
    return Gen.takeError();
  compiler::Compilators Comp(Store, Globals);
  std::vector<std::optional<vm::Value>> Args{std::nullopt,
                                             vm::Value::fixnum(N)};
  return (*Gen)->generateObject(Comp, Args);
}

TEST(PortableProgram, RoundTripsIntoSameHeap) {
  World W;
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  PECOMP_UNWRAP(Obj, specializePower(W, Store, Globals, 5));

  PECOMP_UNWRAP(Port, compiler::PortableProgram::capture(Obj.Residual,
                                                         Globals));
  EXPECT_GT(Port->byteSize(), 0u);
  EXPECT_GE(Port->unitCount(), Obj.Residual.Defs.size());

  // Instantiate into a fresh store under the same global table: every
  // definition must come back byte-identical (same names resolve to the
  // same slots, so even the relocated operands match).
  vm::CodeStore Store2(W.Heap);
  compiler::CompiledProgram CP2 = Port->instantiate(Store2, Globals);
  ASSERT_EQ(CP2.Defs.size(), Obj.Residual.Defs.size());
  for (size_t I = 0; I != CP2.Defs.size(); ++I) {
    EXPECT_EQ(CP2.Defs[I].first, Obj.Residual.Defs[I].first);
    EXPECT_TRUE(vm::codeEquals(CP2.Defs[I].second, Obj.Residual.Defs[I].second));
  }
}

TEST(PortableProgram, InstantiatesIntoFreshHeapAndRuns) {
  // Capture in one world, instantiate and execute in a second world with
  // its own heap, machine, and *empty* global table — the cross-thread /
  // cross-run sharing model of the cache.
  std::shared_ptr<const compiler::PortableProgram> Port;
  Symbol Entry;
  {
    World W1;
    vm::CodeStore Store(W1.Heap);
    vm::GlobalTable Globals;
    PECOMP_UNWRAP(Obj, specializePower(W1, Store, Globals, 5));
    PECOMP_UNWRAP(P, compiler::PortableProgram::capture(Obj.Residual,
                                                        Globals));
    Port = P;
    Entry = Obj.Entry;
    PECOMP_UNWRAP(Fresh, W1.runCompiled(Globals, Obj.Residual, Entry,
                                        {W1.num(2)}));
    expectValueEq(Fresh, vm::Value::fixnum(32));
  } // W1 (heap, store, machine) is gone; Port must stand alone.

  World W2;
  vm::CodeStore Store2(W2.Heap);
  vm::GlobalTable Globals2;
  compiler::CompiledProgram CP = Port->instantiate(Store2, Globals2);
  PECOMP_UNWRAP(R, W2.runCompiled(Globals2, CP, Entry, {W2.num(2)}));
  expectValueEq(R, vm::Value::fixnum(32));
  PECOMP_UNWRAP(R3, W2.runCompiled(Globals2, CP, Entry, {W2.num(3)}));
  expectValueEq(R3, vm::Value::fixnum(243));
}

TEST(PortableProgram, RelocatesGlobalsIntoPopulatedTable) {
  // The target table already has unrelated names, so every relocated
  // GlobalRef index differs from its capture-time value.
  std::shared_ptr<const compiler::PortableProgram> Port;
  Symbol Entry;
  {
    World W1;
    vm::CodeStore Store(W1.Heap);
    vm::GlobalTable Globals;
    PECOMP_UNWRAP(Obj, specializePower(W1, Store, Globals, 4));
    PECOMP_UNWRAP(P, compiler::PortableProgram::capture(Obj.Residual,
                                                        Globals));
    Port = P;
    Entry = Obj.Entry;
  }

  World W2;
  vm::GlobalTable Globals2;
  for (int I = 0; I != 17; ++I)
    Globals2.lookupOrAdd(Symbol::intern("unrelated-" + std::to_string(I)));
  vm::CodeStore Store2(W2.Heap);
  compiler::CompiledProgram CP = Port->instantiate(Store2, Globals2);
  PECOMP_UNWRAP(R, W2.runCompiled(Globals2, CP, Entry, {W2.num(3)}));
  expectValueEq(R, vm::Value::fixnum(81));
}

TEST(SpecCache, KeyDiscriminatesProgramDivisionAndStatics) {
  uint64_t FpA = pgg::fingerprintProgram("(define (f x) x)", "f", "S");
  uint64_t FpB = pgg::fingerprintProgram("(define (f x) x)", "f", "D");
  uint64_t FpC = pgg::fingerprintProgram("(define (g x) x)", "f", "S");
  EXPECT_NE(FpA, FpB);
  EXPECT_NE(FpA, FpC);

  World W;
  std::vector<std::optional<vm::Value>> A{vm::Value::fixnum(1), std::nullopt};
  std::vector<std::optional<vm::Value>> B{vm::Value::fixnum(2), std::nullopt};
  std::vector<std::optional<vm::Value>> C{std::nullopt, vm::Value::fixnum(1)};
  pgg::SpecKey KA = pgg::makeSpecKey(FpA, A);
  pgg::SpecKey KB = pgg::makeSpecKey(FpA, B);
  pgg::SpecKey KC = pgg::makeSpecKey(FpA, C);
  EXPECT_FALSE(KA == KB); // same signature, different static value
  EXPECT_FALSE(KA == KC); // different BT signature
  EXPECT_EQ(KA.BtSig, "SD");
  EXPECT_EQ(KC.BtSig, "DS");
  EXPECT_TRUE(KA == pgg::makeSpecKey(FpA, A)); // deterministic

  // Structural, not identity: an equal list built separately keys the same.
  std::vector<std::optional<vm::Value>> L1{W.value("(1 2 3)")};
  std::vector<std::optional<vm::Value>> L2{W.value("(1 2 3)")};
  EXPECT_TRUE(pgg::makeSpecKey(FpA, L1) == pgg::makeSpecKey(FpA, L2));
}

TEST(SpecCache, HitReturnsInsertedEntryAndCountsStats) {
  World W;
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  PECOMP_UNWRAP(Obj, specializePower(W, Store, Globals, 5));
  PECOMP_UNWRAP(Port, compiler::PortableProgram::capture(Obj.Residual,
                                                         Globals));

  pgg::SpecCache Cache(/*MaxBytes=*/0);
  uint64_t Fp = pgg::fingerprintProgram(PowerSrc, "power", "DS");
  std::vector<std::optional<vm::Value>> Args{std::nullopt,
                                             vm::Value::fixnum(5)};
  pgg::SpecKey Key = pgg::makeSpecKey(Fp, Args);

  EXPECT_EQ(Cache.lookup(Key), nullptr);
  auto Entry = std::make_shared<pgg::CachedSpecialization>();
  Entry->Residual = Port;
  Entry->Entry = Obj.Entry;
  Entry->Stats = Obj.Stats;
  Cache.insert(Key, Entry);

  auto Hit = Cache.lookup(Key);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Residual.get(), Port.get());
  EXPECT_EQ(Hit->Entry, Obj.Entry);

  pgg::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 1u);
  EXPECT_EQ(CS.Insertions, 1u);
  EXPECT_EQ(CS.Evictions, 0u);
  EXPECT_EQ(CS.Entries, 1u);
  EXPECT_EQ(CS.Bytes, Port->byteSize());
  EXPECT_DOUBLE_EQ(CS.hitRate(), 0.5);
  EXPECT_NE(CS.report().find("1 hits, 1 misses"), std::string::npos);
}

TEST(SpecCache, EvictionThenRegenerationIsIdentical) {
  World W;

  // A one-shard cache sized to hold exactly one power specialization:
  // inserting a second evicts the first.
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  PECOMP_UNWRAP(Obj5, specializePower(W, Store, Globals, 5));
  PECOMP_UNWRAP(Port5, compiler::PortableProgram::capture(Obj5.Residual,
                                                          Globals));
  pgg::SpecCache Cache(Port5->byteSize() + Port5->byteSize() / 2,
                       /*Shards=*/1);

  uint64_t Fp = pgg::fingerprintProgram(PowerSrc, "power", "DS");
  auto KeyFor = [&](int64_t N) {
    std::vector<std::optional<vm::Value>> Args{std::nullopt,
                                               vm::Value::fixnum(N)};
    return pgg::makeSpecKey(Fp, Args);
  };
  auto EntryFor = [&](const pgg::ResidualObject &Obj,
                      std::shared_ptr<const compiler::PortableProgram> P) {
    auto E = std::make_shared<pgg::CachedSpecialization>();
    E->Residual = std::move(P);
    E->Entry = Obj.Entry;
    E->Stats = Obj.Stats;
    return E;
  };

  Cache.insert(KeyFor(5), EntryFor(Obj5, Port5));
  ASSERT_NE(Cache.lookup(KeyFor(5)), nullptr);

  vm::CodeStore Store7(W.Heap);
  vm::GlobalTable Globals7;
  PECOMP_UNWRAP(Obj7, specializePower(W, Store7, Globals7, 7));
  PECOMP_UNWRAP(Port7, compiler::PortableProgram::capture(Obj7.Residual,
                                                          Globals7));
  Cache.insert(KeyFor(7), EntryFor(Obj7, Port7));

  // n=5 was least recently used and the budget holds only one entry.
  EXPECT_EQ(Cache.lookup(KeyFor(5)), nullptr);
  ASSERT_NE(Cache.lookup(KeyFor(7)), nullptr);
  EXPECT_GE(Cache.stats().Evictions, 1u);

  // Regenerate the evicted specialization from scratch: byte-identical
  // code, identical behavior.
  vm::CodeStore StoreR(W.Heap);
  vm::GlobalTable GlobalsR;
  PECOMP_UNWRAP(ObjR, specializePower(W, StoreR, GlobalsR, 5));
  ASSERT_EQ(ObjR.Residual.Defs.size(), Obj5.Residual.Defs.size());
  for (size_t I = 0; I != ObjR.Residual.Defs.size(); ++I)
    EXPECT_TRUE(vm::codeEquals(ObjR.Residual.Defs[I].second,
                               Obj5.Residual.Defs[I].second));
  Cache.insert(KeyFor(5), EntryFor(ObjR, *compiler::PortableProgram::capture(
                                             ObjR.Residual, GlobalsR)));
  auto Hit = Cache.lookup(KeyFor(5));
  ASSERT_NE(Hit, nullptr);
  vm::CodeStore StoreX(W.Heap);
  vm::GlobalTable GlobalsX;
  compiler::CompiledProgram CP = Hit->Residual->instantiate(StoreX, GlobalsX);
  PECOMP_UNWRAP(R, W.runCompiled(GlobalsX, CP, Hit->Entry, {W.num(2)}));
  expectValueEq(R, vm::Value::fixnum(32));
}

TEST(SpecCache, LruRefreshOnLookup) {
  // With a two-entry budget, touching A before inserting C makes B the
  // eviction victim.
  World W;
  uint64_t Fp = pgg::fingerprintProgram(PowerSrc, "power", "DS");
  auto KeyFor = [&](int64_t N) {
    std::vector<std::optional<vm::Value>> Args{std::nullopt,
                                               vm::Value::fixnum(N)};
    return pgg::makeSpecKey(Fp, Args);
  };
  auto MakeEntry = [&](int64_t N) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    auto Obj = specializePower(W, Store, Globals, N);
    EXPECT_TRUE(Obj.ok());
    auto Port = compiler::PortableProgram::capture(Obj->Residual, Globals);
    EXPECT_TRUE(Port.ok());
    auto E = std::make_shared<pgg::CachedSpecialization>();
    E->Residual = *Port;
    E->Entry = Obj->Entry;
    return E;
  };

  auto A = MakeEntry(3), B = MakeEntry(4), C = MakeEntry(5);
  // Budget sized so A and C fit together but A, B, and C do not.
  pgg::SpecCache Sized(A->byteSize() + C->byteSize(), /*Shards=*/1);
  Sized.insert(KeyFor(3), A);
  Sized.insert(KeyFor(4), B);
  ASSERT_NE(Sized.lookup(KeyFor(3)), nullptr); // refresh A
  Sized.insert(KeyFor(5), C);                  // evicts B, not A
  EXPECT_NE(Sized.lookup(KeyFor(3)), nullptr);
  EXPECT_EQ(Sized.lookup(KeyFor(4)), nullptr);
  EXPECT_NE(Sized.lookup(KeyFor(5)), nullptr);
}

TEST(SpecCache, ClearDropsEntriesKeepsCounters) {
  pgg::SpecCache Cache(0);
  pgg::SpecKey K = pgg::makeSpecKey(1234, {});
  Cache.insert(K, std::make_shared<pgg::CachedSpecialization>());
  ASSERT_NE(Cache.lookup(K), nullptr);
  Cache.clear();
  EXPECT_EQ(Cache.lookup(K), nullptr);
  pgg::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Entries, 0u);
  EXPECT_EQ(CS.Bytes, 0u);
  EXPECT_EQ(CS.Insertions, 1u);
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 1u); // the post-clear lookup
}

TEST(SpecCache, StatsStayCoherentUnderConcurrentLookups) {
  // The episode-accounting regression: with counters bumped as loose
  // global atomics, a stats() racing a lookup could observe the episode
  // (Lookups) without its outcome (Hits/Misses) — or, worse, an outcome
  // classified against a *different* interleaving than the episode — so
  // Hits + Misses != Lookups in the snapshot. Counters now live per
  // shard, episode and outcome recorded in one critical section, and
  // stats() sums under the same locks: the invariant must hold in EVERY
  // snapshot, not just at quiescence.
  pgg::SpecCache Cache(/*MaxBytes=*/0, /*Shards=*/4);
  constexpr int Threads = 6, Keys = 32, Rounds = 400;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> BadSnapshots{0};

  std::thread Auditor([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      pgg::CacheStats CS = Cache.stats();
      if (CS.Hits + CS.Misses != CS.Lookups)
        ++BadSnapshots;
    }
  });

  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      for (int R = 0; R != Rounds; ++R) {
        pgg::SpecKey K = pgg::makeSpecKey(7000 + (T * Rounds + R) % Keys, {});
        if (!Cache.lookup(K))
          Cache.insert(K, std::make_shared<pgg::CachedSpecialization>());
      }
    });
  for (std::thread &W : Workers)
    W.join();
  Stop = true;
  Auditor.join();

  EXPECT_EQ(BadSnapshots.load(), 0u);
  pgg::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Lookups, uint64_t(Threads) * Rounds);
  EXPECT_EQ(CS.Hits + CS.Misses, CS.Lookups);
  // Every key misses at least once; racing first-lookups may miss more
  // than once per key, but never more than once per thread.
  EXPECT_GE(CS.Misses, uint64_t(Keys));
  EXPECT_LE(CS.Misses, uint64_t(Keys) * Threads);
  EXPECT_EQ(CS.Insertions, CS.Misses); // insert iff the lookup missed
}

} // namespace
