//===- tests/DiskStoreTest.cpp - Persistent store robustness --------------===//
///
/// \file
/// PR 7 core guarantees, exercised adversarially: a store entry
/// round-trips across fresh opens with value parity; EVERY single-byte
/// corruption and EVERY truncation of an entry file is detected and
/// classified at load (never a crash, never silently wrong code); torn
/// writes and injected I/O faults degrade to classified misses; a writer
/// killed mid-put leaves a store that fscks clean; and a forged payload
/// that passes every structural check still dies at the byte-code
/// verifier before reaching any Machine.
///
//===----------------------------------------------------------------------===//

#include "StoreTestUtil.h"
#include "TestUtil.h"

#include "compiler/Link.h"
#include "pgg/DiskStore.h"
#include "pgg/SpecCache.h"

#include <csignal>
#include <random>
#include <sys/wait.h>
#include <unistd.h>

using namespace pecomp;
using namespace pecomp::test;

namespace {

const char *PowerSrc = R"((define (power x n)
  (if (= n 0) 1 (* x (power x (- n 1))))))";

Result<pgg::ResidualObject> specializePower(World &W, vm::CodeStore &Store,
                                            vm::GlobalTable &Globals,
                                            int64_t N) {
  auto Gen = pgg::GeneratingExtension::create(W.Heap, PowerSrc, "power", "DS");
  if (!Gen)
    return Gen.takeError();
  compiler::Compilators Comp(Store, Globals);
  std::vector<std::optional<vm::Value>> Args{std::nullopt,
                                             vm::Value::fixnum(N)};
  return (*Gen)->generateObject(Comp, Args);
}

/// One ready-to-store specialization (power with n = 5) plus its key.
struct Specimen {
  World W;
  pgg::SpecKey Key;
  pgg::CachedSpecialization Entry;

  Specimen() {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    auto Obj = specializePower(W, Store, Globals, 5);
    EXPECT_TRUE(Obj.ok());
    auto Port = compiler::PortableProgram::capture(Obj->Residual, Globals);
    EXPECT_TRUE(Port.ok());
    Entry.Residual = *Port;
    Entry.Entry = Obj->Entry;
    Entry.Stats = Obj->Stats;
    std::vector<std::optional<vm::Value>> Args{std::nullopt,
                                               vm::Value::fixnum(5)};
    Key = pgg::makeSpecKey(
        pgg::fingerprintProgram(PowerSrc, "power", "DS"), Args);
  }

  /// Runs a loaded specialization and checks 2^5 = 32.
  void expectServes(const pgg::CachedSpecialization &C) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::CompiledProgram CP = C.Residual->instantiate(Store, Globals);
    auto R = W.runCompiled(Globals, CP, C.Entry, {W.num(2)});
    ASSERT_TRUE(R.ok()) << R.error().render();
    expectValueEq(*R, vm::Value::fixnum(32));
  }
};

std::string entryPath(const TempStoreDir &D, const pgg::SpecKey &K) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%016llx.ppc",
           static_cast<unsigned long long>(K.Hash));
  return D.Path + "/" + Buf;
}

// The store's own checksum (FNV-1a), reimplemented so tests can forge
// otherwise-valid entries: version skew and verifier rejection must be
// reachable *through* intact checksums.
uint64_t fnv1a(const uint8_t *P, size_t N) {
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

void putU64At(std::vector<uint8_t> &B, size_t Off, uint64_t V) {
  for (int S = 0; S < 64; S += 8)
    B[Off + static_cast<size_t>(S / 8)] = static_cast<uint8_t>(V >> S);
}

/// Recomputes both checksums of a (possibly doctored) entry image, so the
/// doctored field — not the checksum layer — is what load() must catch.
void resealEntry(std::vector<uint8_t> &Image) {
  putU64At(Image, 32, fnv1a(Image.data() + 48, Image.size() - 48));
  putU64At(Image, 40, fnv1a(Image.data(), 40));
}

pgg::StoreError loadError(pgg::DiskStore &St, const pgg::SpecKey &K) {
  auto R = St.load(K);
  if (R.ok())
    return pgg::StoreError::None;
  return pgg::storeErrorOf(R.error());
}

TEST(DiskStore, PutThenLoadAcrossFreshOpensServesIdentically) {
  Specimen S;
  TempStoreDir Dir;
  {
    PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
    EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
    pgg::DiskStoreStats DS = St->stats();
    EXPECT_EQ(DS.Writes, 1u);
    EXPECT_EQ(DS.EntriesOnDisk, 1u);
    EXPECT_GT(DS.BytesOnDisk, 0u);
  } // first process gone; only the directory survives

  PECOMP_UNWRAP(St2, pgg::DiskStore::open(Dir.Path, /*ReadOnly=*/true));
  PECOMP_UNWRAP(Hit, St2->load(S.Key));
  EXPECT_EQ(Hit->Entry, S.Entry.Entry);
  EXPECT_EQ(Hit->Stats.ResidualFunctions, S.Entry.Stats.ResidualFunctions);
  EXPECT_EQ(Hit->Stats.UnfoldedCalls, S.Entry.Stats.UnfoldedCalls);
  S.expectServes(*Hit);
  EXPECT_EQ(St2->stats().Hits, 1u);

  // A read-only store never writes.
  EXPECT_EQ(St2->put(S.Key, S.Entry), pgg::StoreError::WriteFailed);
}

TEST(DiskStore, MissesAndMismatchedKeysAreClassified) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::NotFound);
  EXPECT_EQ(St->stats().Misses, 1u);

  // A checksum-valid blob copied under another key's file name answers a
  // lookup it does not hold: KeyMismatch, not a hit.
  EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  std::vector<std::optional<vm::Value>> Args7{std::nullopt,
                                              vm::Value::fixnum(7)};
  pgg::SpecKey Key7 = pgg::makeSpecKey(
      pgg::fingerprintProgram(PowerSrc, "power", "DS"), Args7);
  std::filesystem::copy_file(entryPath(Dir, S.Key), entryPath(Dir, Key7));
  EXPECT_EQ(loadError(*St, Key7), pgg::StoreError::KeyMismatch);

  // cache-fsck's walk catches the renamed blob the same way.
  PECOMP_UNWRAP(Entries, pgg::DiskStore::walk(Dir.Path, /*Deep=*/true));
  size_t Mismatched = 0;
  for (const pgg::StoreEntryInfo &E : Entries)
    Mismatched += E.Status == pgg::StoreError::KeyMismatch;
  EXPECT_EQ(Mismatched, 1u);
}

TEST(DiskStore, EverySingleByteCorruptionIsDetectedAtLoad) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  ASSERT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  const std::string Path = entryPath(Dir, S.Key);
  const std::vector<uint8_t> Good = slurp(Path);
  ASSERT_GT(Good.size(), 48u);

  // The acceptance bar: 100% of single-byte flips rejected with a
  // classified error — under both a gross flip and the subtlest one.
  for (uint8_t Mask : {uint8_t(0xFF), uint8_t(0x01)}) {
    for (size_t Off = 0; Off != Good.size(); ++Off) {
      std::vector<uint8_t> Bad = Good;
      Bad[Off] ^= Mask;
      spit(Path, Bad);
      pgg::StoreError E = loadError(*St, S.Key);
      EXPECT_NE(E, pgg::StoreError::None)
          << "flip ^" << int(Mask) << " at offset " << Off << " not detected";
      EXPECT_NE(E, pgg::StoreError::NotFound);
    }
  }
  spit(Path, Good);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::None);
}

TEST(DiskStore, EveryTruncationIsDetectedAtLoad) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  ASSERT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  const std::string Path = entryPath(Dir, S.Key);
  const std::vector<uint8_t> Good = slurp(Path);

  for (size_t Len = 0; Len != Good.size(); ++Len) {
    spit(Path, std::vector<uint8_t>(Good.begin(), Good.begin() + Len));
    pgg::StoreError E = loadError(*St, S.Key);
    EXPECT_TRUE(E == pgg::StoreError::Truncated ||
                E == pgg::StoreError::HeaderCorrupt)
        << "prefix of " << Len << " bytes classified as "
        << pgg::storeErrorName(E);
  }
  // Trailing garbage (a torn *append*) is rejected too.
  std::vector<uint8_t> Long = Good;
  Long.push_back(0x00);
  spit(Path, Long);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::HeaderCorrupt);
}

TEST(DiskStore, VersionSkewBehindValidChecksumsIsClassified) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  ASSERT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  const std::string Path = entryPath(Dir, S.Key);
  std::vector<uint8_t> Image = slurp(Path);

  Image[4] = 99; // future format version, checksums made consistent
  resealEntry(Image);
  spit(Path, Image);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::BadVersion);

  Image[0] ^= 0xFF; // and a non-entry file under the entry name
  spit(Path, Image);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::BadMagic);
}

TEST(DiskStore, ForgedPayloadDiesAtTheVerifierNotInTheVm) {
  // Hand-encode a structurally impeccable snapshot whose one code object
  // is a single garbage opcode (0xFF): checksums pass, deserialization
  // passes, and the verify-on-load sandbox must reject it — the last
  // line of defense actually holds.
  std::vector<uint8_t> Payload;
  auto U32 = [&](uint32_t V) {
    for (int Sh = 0; Sh < 32; Sh += 8)
      Payload.push_back(static_cast<uint8_t>(V >> Sh));
  };
  auto Str = [&](std::string_view Sv) {
    U32(static_cast<uint32_t>(Sv.size()));
    Payload.insert(Payload.end(), Sv.begin(), Sv.end());
  };
  U32(1);   // units
  U32(1);   // defs
  U32(0);   // globals
  Str("f"); // def name
  U32(0);   // def -> unit 0
  Str("f"); // unit name
  U32(0);   // arity
  Payload.push_back(0); // not peepholed
  U32(1);               // code length
  Payload.push_back(0xFF); // the garbage opcode
  U32(0);                  // literals
  U32(0);                  // children
  U32(0);                  // relocs

  // Our forgery really is structurally valid.
  auto Port = compiler::PortableProgram::deserialize(Payload);
  ASSERT_TRUE(Port.ok()) << Port.error().render();

  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  ASSERT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  std::vector<uint8_t> Image = slurp(entryPath(Dir, S.Key));

  // Graft the forged payload onto the real entry's key fields: keep the
  // header's key lengths, swap the payload, fix lengths and checksums.
  uint32_t BtLen = Image[16], StaticLen = Image[20], EntryLen = Image[24];
  size_t PayloadOff = 48 + BtLen + StaticLen + EntryLen + 5 * 8;
  Image.resize(PayloadOff);
  Image.insert(Image.end(), Payload.begin(), Payload.end());
  // Payload length field, then reseal. The stored entry name must name a
  // defined function, so point it at "f"'s single-byte spelling? No —
  // keep the original entry name; the forged snapshot does not define
  // it, which exercises the entry-symbol check on the same path.
  for (int Sh = 0; Sh < 32; Sh += 8)
    Image[28 + static_cast<size_t>(Sh / 8)] =
        static_cast<uint8_t>(Payload.size() >> Sh);
  resealEntry(Image);
  spit(entryPath(Dir, S.Key), Image);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::VerifyRejected);
  EXPECT_GE(St->stats().VerifyRejects, 1u);

  // Now let the forgery also claim the right entry name by renaming the
  // stored one to "f" — the garbage opcode itself must be rejected.
  // (Entry name sits after BtSig and StaticSig; rebuild it as "f".)
  std::vector<uint8_t> Image2 = slurp(entryPath(Dir, S.Key));
  std::vector<uint8_t> Rebuilt(Image2.begin(), Image2.begin() + 48 + BtLen +
                                                   StaticLen);
  Rebuilt.push_back('f');
  Rebuilt.insert(Rebuilt.end(), Image2.begin() + 48 + BtLen + StaticLen +
                                    EntryLen,
                 Image2.end());
  Rebuilt[24] = 1; // entry-name length
  resealEntry(Rebuilt);
  spit(entryPath(Dir, S.Key), Rebuilt);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::VerifyRejected);
}

TEST(DiskStore, FaultPlanInjectsEveryFailureMode) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));

  // Clean write failure: reported, no debris, nothing committed.
  St->setFaultPlan({.FailAtWrite = 1});
  EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::WriteFailed);
  EXPECT_FALSE(std::filesystem::exists(entryPath(Dir, S.Key)));
  EXPECT_FALSE(std::filesystem::exists(entryPath(Dir, S.Key) + ".tmp"));

  // Torn write + crash: tmp debris remains, loads still see no entry,
  // fsck classifies the debris as torn.
  St->setFaultPlan({.ShortWriteAt = 1});
  EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::WriteFailed);
  EXPECT_TRUE(std::filesystem::exists(entryPath(Dir, S.Key) + ".tmp"));
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::NotFound);
  {
    PECOMP_UNWRAP(Entries, pgg::DiskStore::walk(Dir.Path, /*Deep=*/true));
    ASSERT_EQ(Entries.size(), 1u);
    EXPECT_EQ(Entries[0].Status, pgg::StoreError::TornWrite);
  }

  // Failed fsync: nothing may commit over the debris-free path either.
  St->setFaultPlan({.FailFsync = true});
  EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::WriteFailed);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::NotFound);

  // Corruption-at-offset: the put commits, but the committed image lies;
  // load must classify, exactly as for organic bit rot.
  St->setFaultPlan({.CorruptAtWrite = 1, .CorruptOffset = 60});
  EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::BodyCorrupt);

  // Repair, then injected read faults: hard error and short read.
  St->setFaultPlan({});
  EXPECT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  St->setFaultPlan({.FailAtRead = 1});
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::IoError);
  St->setFaultPlan({.ShortReadAt = 1});
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::Truncated);
  St->setFaultPlan({});
  EXPECT_EQ(loadError(*St, S.Key), pgg::StoreError::None);
  EXPECT_GE(St->stats().WriteFailures, 3u);
}

TEST(DiskStore, RandomizedFaultHammerNeverCrashesOrServesWrongCode) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  std::mt19937 Rng(0xD15C);
  for (int Round = 0; Round != 60; ++Round) {
    pgg::StoreFaultPlan P;
    switch (Rng() % 6) {
    case 0: P.FailAtWrite = 1 + Rng() % 2; break;
    case 1: P.ShortWriteAt = 1 + Rng() % 2; break;
    case 2: P.FailAtRead = 1 + Rng() % 2; break;
    case 3: P.ShortReadAt = 1 + Rng() % 2; break;
    case 4: P.FailFsync = true; break;
    case 5:
      P.CorruptAtWrite = 1;
      P.CorruptOffset = Rng() % 512;
      break;
    }
    St->setFaultPlan(P);
    St->put(S.Key, S.Entry); // may fail or commit corrupt — both fine
    auto R = St->load(S.Key);
    if (R.ok())
      S.expectServes(**R); // whatever loads must serve correct code
    else
      EXPECT_NE(pgg::storeErrorOf(R.error()), pgg::StoreError::None)
          << "unclassified: " << R.error().render();
    St->setFaultPlan({});
  }
  // After the storm: one clean put, and the store serves again.
  ASSERT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  PECOMP_UNWRAP(Hit, St->load(S.Key));
  S.expectServes(*Hit);
}

TEST(DiskStore, WriterKilledMidPutLeavesAStoreThatFscksClean) {
  Specimen S;
  TempStoreDir Dir;

  // The child writes entries (distinct keys) as fast as it can until it
  // is SIGKILLed — with luck mid-write, which is the point: whatever
  // instant the kill lands, every *committed* entry must still be whole.
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    auto St = pgg::DiskStore::open(Dir.Path);
    if (!St.ok())
      _exit(1);
    for (uint64_t I = 0;; ++I) {
      pgg::SpecKey K = S.Key;
      K.StaticSig = "victim-" + std::to_string(I) + "\n";
      K.Hash = pgg::specKeyHash(K.ProgramFp, K.BtSig, K.StaticSig);
      (*St)->put(K, S.Entry);
    }
  }
  // Let it commit a few entries, then kill it without warning.
  for (int Spin = 0; Spin != 10000; ++Spin) {
    size_t Committed = 0;
    for (auto &E : std::filesystem::directory_iterator(Dir.Path))
      Committed += E.path().extension() == ".ppc";
    if (Committed >= 3)
      break;
    usleep(1000);
  }
  kill(Child, SIGKILL);
  int Status = 0;
  waitpid(Child, &Status, 0);
  ASSERT_TRUE(WIFSIGNALED(Status));

  // The surviving store: every committed entry verifies end to end, any
  // debris is classified torn, and every entry still loads and serves.
  PECOMP_UNWRAP(Entries, pgg::DiskStore::walk(Dir.Path, /*Deep=*/true));
  size_t Committed = 0;
  for (const pgg::StoreEntryInfo &E : Entries) {
    EXPECT_TRUE(E.Status == pgg::StoreError::None ||
                E.Status == pgg::StoreError::TornWrite)
        << E.File << ": " << pgg::storeErrorName(E.Status) << " "
        << E.Detail;
    Committed += E.Status == pgg::StoreError::None;
  }
  EXPECT_GE(Committed, 3u);

  // By-key check for every ordinal the child might have reached: each
  // either loads, verifies, and serves — or is a plain NotFound. No
  // corruption class may appear anywhere in the surviving store.
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path, /*ReadOnly=*/true));
  size_t Loaded = 0;
  for (uint64_t I = 0; I != 64; ++I) {
    pgg::SpecKey K = S.Key;
    K.StaticSig = "victim-" + std::to_string(I) + "\n";
    K.Hash = pgg::specKeyHash(K.ProgramFp, K.BtSig, K.StaticSig);
    auto R = St->load(K);
    if (R.ok()) {
      ++Loaded;
      S.expectServes(**R);
    } else {
      EXPECT_EQ(pgg::storeErrorOf(R.error()), pgg::StoreError::NotFound)
          << R.error().render();
    }
  }
  EXPECT_GE(Loaded, 3u);
}

TEST(SpecCacheDiskTier, LookupFallsThroughPromotesAndWritesThrough) {
  Specimen S;
  TempStoreDir Dir;

  // First cache: insert writes through to disk.
  {
    PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
    pgg::SpecCache Cache(/*MaxBytes=*/0);
    Cache.attachDisk(St);
    Cache.insert(S.Key, std::make_shared<pgg::CachedSpecialization>(S.Entry));
    EXPECT_EQ(St->stats().Writes, 1u);
  }

  // Second cache, fresh memory: miss in memory, hit on disk, promoted.
  PECOMP_UNWRAP(St2, pgg::DiskStore::open(Dir.Path));
  pgg::SpecCache Cache2(/*MaxBytes=*/0);
  Cache2.attachDisk(St2);
  pgg::LookupOutcome Out;
  auto Hit = Cache2.lookup(S.Key, Out);
  ASSERT_NE(Hit, nullptr);
  EXPECT_FALSE(Out.MemoryHit);
  EXPECT_TRUE(Out.DiskHit);
  EXPECT_EQ(Out.DiskError, 0);
  S.expectServes(*Hit);

  // Promotion means the next lookup is a pure memory hit.
  pgg::LookupOutcome Out2;
  ASSERT_NE(Cache2.lookup(S.Key, Out2), nullptr);
  EXPECT_TRUE(Out2.MemoryHit);
  EXPECT_FALSE(Out2.DiskHit);

  // Stats surface the disk tier.
  pgg::CacheStats CS = Cache2.stats();
  EXPECT_TRUE(CS.HasDisk);
  EXPECT_EQ(CS.DiskHits, 1u);
  EXPECT_NE(CS.report().find("disk-store:"), std::string::npos);
}

TEST(SpecCacheDiskTier, CorruptEntryDegradesToClassifiedMiss) {
  Specimen S;
  TempStoreDir Dir;
  PECOMP_UNWRAP(St, pgg::DiskStore::open(Dir.Path));
  ASSERT_EQ(St->put(S.Key, S.Entry), pgg::StoreError::None);
  std::vector<uint8_t> Image = slurp(entryPath(Dir, S.Key));
  Image[Image.size() / 2] ^= 0x40;
  spit(entryPath(Dir, S.Key), Image);

  pgg::SpecCache Cache(/*MaxBytes=*/0);
  Cache.attachDisk(St);
  pgg::LookupOutcome Out;
  EXPECT_EQ(Cache.lookup(S.Key, Out), nullptr);
  EXPECT_FALSE(Out.DiskHit);
  EXPECT_EQ(Out.DiskError, pgg::StoreErrorCodeBase +
                               static_cast<int>(pgg::StoreError::BodyCorrupt));
  EXPECT_FALSE(Out.DiskDetail.empty());
}

} // namespace
