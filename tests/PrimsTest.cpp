//===- tests/PrimsTest.cpp - Per-primitive differential tests --------------===//
///
/// \file
/// Every primitive, exercised through source programs on all three
/// engines (reference interpreter, stock compiler, ANF compiler), for
/// both successful applications and type/domain errors — the engines
/// must agree on the result or on the fact of failure.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "vm/Prims.h"

#include <cstdint>
#include <limits>

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct PrimCase {
  const char *Name;
  const char *Call;     // body of (define (go a b) <Call>)
  const char *A;        // datum
  const char *B;        // datum
  const char *Expected; // datum, or nullptr when an error is expected
};

const PrimCase PrimCases[] = {
    {"add", "(+ a b)", "3", "4", "7"},
    {"add_negative", "(+ a b)", "-3", "-4", "-7"},
    {"sub", "(- a b)", "3", "10", "-7"},
    {"mul", "(* a b)", "-6", "7", "-42"},
    {"quotient", "(quotient a b)", "17", "5", "3"},
    {"quotient_negative", "(quotient a b)", "-17", "5", "-3"},
    {"remainder", "(remainder a b)", "17", "5", "2"},
    {"remainder_negative", "(remainder a b)", "-17", "5", "-2"},
    {"quotient_by_zero", "(quotient a b)", "1", "0", nullptr},
    {"remainder_by_zero", "(remainder a b)", "1", "0", nullptr},
    {"add_type_error", "(+ a b)", "1", "(2)", nullptr},
    {"numeq_true", "(= a b)", "5", "5", "#t"},
    {"numeq_false", "(= a b)", "5", "6", "#f"},
    {"lt", "(< a b)", "5", "6", "#t"},
    {"gt", "(> a b)", "5", "6", "#f"},
    {"le_equal", "(<= a b)", "6", "6", "#t"},
    {"ge", "(>= a b)", "7", "6", "#t"},
    {"compare_type_error", "(< a b)", "1", "x", nullptr},
    {"eq_symbols", "(eq? a b)", "foo", "foo", "#t"},
    {"eq_numbers", "(eq? a b)", "12", "12", "#t"},
    {"eq_distinct_lists", "(eq? a b)", "(1)", "(1)", "#f"},
    {"equal_lists", "(equal? a b)", "(1 (2) x)", "(1 (2) x)", "#t"},
    {"equal_strings", "(equal? a b)", "\"hi\"", "\"hi\"", "#t"},
    {"equal_differs", "(equal? a b)", "(1 2)", "(1 3)", "#f"},
    {"cons_car", "(car (cons a b))", "1", "2", "1"},
    {"cons_cdr", "(cdr (cons a b))", "1", "2", "2"},
    {"car_of_list", "(car a)", "(x y)", "0", "x"},
    {"cdr_of_list", "(cdr a)", "(x y)", "0", "(y)"},
    {"car_type_error", "(car a)", "7", "0", nullptr},
    {"cdr_type_error", "(cdr a)", "#t", "0", nullptr},
    {"nullp_true", "(null? a)", "()", "0", "#t"},
    {"nullp_false", "(null? a)", "(1)", "0", "#f"},
    {"pairp_true", "(pair? a)", "(1 . 2)", "0", "#t"},
    {"pairp_nil_is_not_pair", "(pair? a)", "()", "0", "#f"},
    {"zerop", "(zero? a)", "0", "0", "#t"},
    {"zerop_false", "(zero? a)", "-1", "0", "#f"},
    {"zerop_type_error", "(zero? a)", "(0)", "0", nullptr},
    {"not_false", "(not a)", "#f", "0", "#t"},
    {"not_everything_else", "(not a)", "0", "0", "#f"},
    {"numberp", "(number? a)", "3", "0", "#t"},
    {"numberp_false", "(number? a)", "three", "0", "#f"},
    {"symbolp", "(symbol? a)", "sym", "0", "#t"},
    {"symbolp_false", "(symbol? a)", "\"sym\"", "0", "#f"},
    {"booleanp", "(boolean? a)", "#f", "0", "#t"},
    {"booleanp_false", "(boolean? a)", "()", "0", "#f"},
    {"procedurep_false", "(procedure? a)", "5", "0", "#f"},
    {"procedurep_lambda", "(procedure? (lambda (x) x))", "0", "0", "#t"},
    {"error_aborts", "(error a)", "\"boom\"", "0", nullptr},
};

class PrimDifferential : public ::testing::TestWithParam<PrimCase> {};

TEST_P(PrimDifferential, EnginesAgreeOnResultOrFailure) {
  const PrimCase &C = GetParam();
  World W;
  std::string Source =
      std::string("(define (go a b) ") + C.Call + ")";
  PECOMP_UNWRAP(P, W.parse(Source));
  std::vector<vm::Value> Args = {W.value(C.A), W.value(C.B)};

  Result<vm::Value> Ref = W.evalCall(P, "go", Args);
  Result<vm::Value> Stock = W.runStock(P, "go", Args);
  Result<vm::Value> Anf = W.runAnf(P, "go", Args);

  if (C.Expected) {
    vm::Value Expected = W.value(C.Expected);
    ASSERT_TRUE(Ref.ok()) << Ref.error().render();
    expectValueEq(*Ref, Expected);
    ASSERT_TRUE(Stock.ok()) << Stock.error().render();
    expectValueEq(*Stock, Expected);
    ASSERT_TRUE(Anf.ok()) << Anf.error().render();
    expectValueEq(*Anf, Expected);
  } else {
    EXPECT_FALSE(Ref.ok()) << vm::valueToString(*Ref);
    EXPECT_FALSE(Stock.ok());
    EXPECT_FALSE(Anf.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Prims, PrimDifferential,
                         ::testing::ValuesIn(PrimCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

// -- Fixnum edge cases ------------------------------------------------------

// The INT64_MIN / -1 quotient is the one int64 division with no
// representable result; the wrap helpers must pin its value (two's
// complement negation, remainder zero) instead of leaving it undefined.
// These call the helpers directly because 63-bit fixnum payloads can
// never deliver INT64_MIN to applyPrim at runtime.
TEST(FixnumEdges, WrapHelpersPinInt64MinOverMinusOne) {
  constexpr int64_t Min = std::numeric_limits<int64_t>::min();
  constexpr int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(vm::fixnumWrapQuotient(Min, -1), Min);
  EXPECT_EQ(vm::fixnumWrapRemainder(Min, -1), 0);
  // -1 divisors away from the singular point still mean plain negation.
  EXPECT_EQ(vm::fixnumWrapQuotient(Max, -1), -Max);
  EXPECT_EQ(vm::fixnumWrapRemainder(Max, -1), 0);
  EXPECT_EQ(vm::fixnumWrapQuotient(7, -1), -7);
  // And ordinary divisions are untouched by the wrap convention.
  EXPECT_EQ(vm::fixnumWrapQuotient(-17, 5), -3);
  EXPECT_EQ(vm::fixnumWrapRemainder(-17, 5), -2);
  EXPECT_EQ(vm::fixnumWrapQuotient(Min, 2), Min / 2);
  EXPECT_EQ(vm::fixnumWrapRemainder(Min + 1, -1), 0);
}

// Sweeps every pair of 63-bit payload edges through all five arithmetic
// prims on all three engines. The engines share applyPrim, so this pins
// the wrap behavior (including quotient at the fixnum minimum over -1,
// which overflows the 63-bit payload and must wrap identically
// everywhere) rather than letting each path drift.
TEST(FixnumEdges, EdgeSweepAgreesAcrossEngines) {
  constexpr int64_t FixMin = -(int64_t{1} << 62);
  constexpr int64_t FixMax = (int64_t{1} << 62) - 1;
  const int64_t Edges[] = {FixMin, FixMin + 1, -17, -2, -1, 0,
                           1,      2,          17,  FixMax - 1, FixMax};
  const struct {
    const char *Name;
    const char *Source;
  } Ops[] = {
      {"+", "(define (go a b) (+ a b))"},
      {"-", "(define (go a b) (- a b))"},
      {"*", "(define (go a b) (* a b))"},
      {"quotient", "(define (go a b) (quotient a b))"},
      {"remainder", "(define (go a b) (remainder a b))"},
  };

  World W;
  for (const auto &OpCase : Ops) {
    PECOMP_UNWRAP(P, W.parse(OpCase.Source));
    for (int64_t A : Edges) {
      for (int64_t B : Edges) {
        SCOPED_TRACE(std::string("(") + OpCase.Name + " " +
                     std::to_string(A) + " " + std::to_string(B) + ")");
        std::vector<vm::Value> Args = {W.num(A), W.num(B)};
        Result<vm::Value> Ref = W.evalCall(P, "go", Args);
        Result<vm::Value> Stock = W.runStock(P, "go", Args);
        Result<vm::Value> Anf = W.runAnf(P, "go", Args);
        ASSERT_EQ(Ref.ok(), Stock.ok());
        ASSERT_EQ(Ref.ok(), Anf.ok());
        if (!Ref.ok())
          continue; // division by zero — all three agreed on failure
        expectValueEq(*Stock, *Ref);
        expectValueEq(*Anf, *Ref);
        // Quotient/remainder results must equal the wrap helpers after
        // 63-bit payload truncation.
        if (OpCase.Name[0] == 'q')
          expectValueEq(*Ref, W.num(vm::fixnumWrapQuotient(A, B)));
        else if (OpCase.Name[0] == 'r')
          expectValueEq(*Ref, W.num(vm::fixnumWrapRemainder(A, B)));
      }
    }
  }
}

TEST(BoxPrims, BoxLifecycleOnAllEngines) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (go v)"
      "  (let ((b (make-box v)))"
      "    (let ((before (box-ref b)))"
      "      (begin (box-set! b (+ before 1))"
      "             (cons before (box-ref b))))))"));
  for (auto Run : {&World::evalCall, &World::runStock, &World::runAnf}) {
    PECOMP_UNWRAP(R, (W.*Run)(P, "go", {W.num(10)}));
    expectValueEq(R, W.value("(10 . 11)"));
  }
}

TEST(BoxPrims, BoxTypeErrors) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (go v) (box-ref v))"));
  EXPECT_FALSE(W.evalCall(P, "go", {W.num(1)}).ok());
  EXPECT_FALSE(W.runAnf(P, "go", {W.num(1)}).ok());
}

} // namespace
