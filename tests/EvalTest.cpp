//===- tests/EvalTest.cpp - Reference interpreter unit tests ---------------===//

#include "TestUtil.h"

#include "frontend/Parse.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

TEST(EvalTest, EvaluatesLiterals) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f) 42)"));
  eval::Interp I(W.Heap, P);
  PECOMP_UNWRAP(R, I.callFunction(Symbol::intern("f"), {}));
  expectValueEq(R, W.num(42));
}

TEST(EvalTest, EvalExprOnStandaloneExpressions) {
  World W;
  Program Empty;
  eval::Interp I(W.Heap, Empty);
  Result<const Datum *> D = readDatum("(+ 1 (* 2 3))", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  PECOMP_UNWRAP(R, W.pinned(I.evalExpr(*E)));
  expectValueEq(R, W.num(7));
}

TEST(EvalTest, UnboundVariableIsAnError) {
  World W;
  Program Empty;
  eval::Interp I(W.Heap, Empty);
  Result<const Datum *> D = readDatum("((lambda (x) y) 1)", W.Datums);
  Result<const Expr *> E = parseExpr(*D, W.Exprs);
  Result<vm::Value> R = I.evalExpr(*E);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("unbound variable 'y'"),
            std::string::npos);
}

TEST(EvalTest, UnknownFunctionIsAnError) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f) 1)"));
  eval::Interp I(W.Heap, P);
  Result<vm::Value> R = I.callFunction(Symbol::intern("g"), {});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("no definition"), std::string::npos);
}

TEST(EvalTest, ArityMismatchIsAnError) {
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (f x) x)"));
  eval::Interp I(W.Heap, P);
  Result<vm::Value> R = I.callFunction(Symbol::intern("f"), {});
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("expects 1"), std::string::npos);
}

TEST(EvalTest, ClosuresCaptureTheirEnvironment) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (counter-pair)"
      "  (let ((a 1))"
      "    (let ((f (lambda () a)))"
      "      (let ((a 99))"
      "        (cons (f) a)))))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "counter-pair", {}));
  expectValueEq(R, W.value("(1 . 99)"));
}

TEST(EvalTest, TailCallsRunInConstantCppStack) {
  // One million iterations: would overflow the host stack if eval
  // recursed per tail call.
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (loop i acc) (if (zero? i) acc (loop (- i 1) (+ acc 1))))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "loop", {W.num(1000000), W.num(0)}));
  expectValueEq(R, W.num(1000000));
}

TEST(EvalTest, MutualTailCallsAlsoConstantStack) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (pong n) (if (zero? n) 'pong (ping (- n 1))))"
      "(define (ping n) (if (zero? n) 'ping (pong (- n 1))))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "ping", {W.num(500001)}));
  expectValueEq(R, W.value("pong"));
}

TEST(EvalTest, ShadowStackSurvivesCollectionMidExpression) {
  // Arguments already evaluated must survive a GC triggered by a later
  // argument's allocation.
  World W;
  W.Heap.setStressMode(true);
  PECOMP_UNWRAP(P, W.parse(
      "(define (f) (cons (cons 1 2) (cons 3 (cons 4 5))))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "f", {}));
  expectValueEq(R, W.value("((1 . 2) 3 4 . 5)"));
}

TEST(EvalTest, ErrorsPropagateOutOfDeepRecursion) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f n) (if (zero? n) (car 'boom) (f (- n 1))))"));
  Result<vm::Value> R = W.evalCall(P, "f", {W.num(100)});
  ASSERT_FALSE(R.ok());
}

TEST(EvalTest, BoxesShareStateAcrossClosures) {
  World W;
  PECOMP_UNWRAP(P, W.parse(
      "(define (f)"
      "  (let ((cell 10))"
      "    (let ((w (lambda (v) (set! cell v)))"
      "          (r (lambda () cell)))"
      "      (begin (w 42) (r)))))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "f", {}));
  expectValueEq(R, W.num(42));
}

TEST(EvalTest, ConstantsAreCachedAcrossCalls) {
  // Quoted constants convert to values once; identity is stable within
  // one interpreter (eq? on the same quoted list is true across calls).
  World W;
  PECOMP_UNWRAP(P, W.parse("(define (k) '(a b))"
                           "(define (f) (eq? (k) (k)))"));
  PECOMP_UNWRAP(R, W.evalCall(P, "f", {}));
  expectValueEq(R, W.value("#t"));
}

} // namespace
