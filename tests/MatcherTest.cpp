//===- tests/MatcherTest.cpp - String-matcher specialization ---------------===//
///
/// \file
/// The classic matcher-by-PE subject: specializing the naive substring
/// matcher with respect to a static pattern hard-codes the pattern into a
/// cascade of comparisons. Swept over patterns and texts against the
/// unspecialized matcher.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

struct MatcherCase {
  const char *Name;
  const char *Pattern; // datum: list of symbols
  std::vector<std::pair<const char *, int64_t>> TextsAndIndices;
};

std::vector<MatcherCase> matcherCases() {
  return {
      {"empty_pattern", "()", {{"(a b c)", 0}, {"()", 0}}},
      {"single", "(a)", {{"(a)", 0}, {"(b a)", 1}, {"(b c)", -1}, {"()", -1}}},
      {"word",
       "(a b a)",
       {{"(a b a)", 0},
        {"(x a b a y)", 1},
        {"(a b x a b a)", 3},
        {"(a b a b a)", 0},
        {"(a b)", -1}}},
      {"self_overlapping",
       "(a a b)",
       {{"(a a a b)", 1}, {"(a a a a)", -1}, {"(a a b)", 0}}},
      {"longer",
       "(t h e space c a t)",
       {{"(x t h e space c a t y)", 1}, {"(t h e space c a r)", -1}}},
  };
}

class MatcherSweep : public ::testing::TestWithParam<MatcherCase> {};

TEST_P(MatcherSweep, SpecializedMatcherAgreesWithGeneral) {
  const MatcherCase &C = GetParam();
  World W;

  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::matcherProgram(), "match",
                         "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.value(C.Pattern), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));

  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  PECOMP_UNWRAP(Obj, Gen->generateObject(Comp, SpecArgs));

  PECOMP_UNWRAP(General, W.parse(workloads::matcherProgram()));

  for (const auto &[Text, Index] : C.TextsAndIndices) {
    vm::Value In = W.value(Text);
    PECOMP_UNWRAP(Expected,
                  W.evalCall(General, "match", {W.value(C.Pattern), In}));
    expectValueEq(Expected, W.num(Index));

    PECOMP_UNWRAP(ViaSource, W.runAnf(Res.Residual, Res.Entry.str(), {In}));
    expectValueEq(ViaSource, W.num(Index));

    PECOMP_UNWRAP(ViaObject,
                  W.runCompiled(Globals, Obj.Residual, Obj.Entry, {In}));
    expectValueEq(ViaObject, W.num(Index));
  }
}

INSTANTIATE_TEST_SUITE_P(Matcher, MatcherSweep,
                         ::testing::ValuesIn(matcherCases()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(MatcherStructure, PatternIsHardCodedIntoResidual) {
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::matcherProgram(), "match",
                         "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.value("(a b c)"), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  std::string Printed = Res.Residual.print();

  // The pattern characters appear as embedded constants...
  EXPECT_NE(Printed.find("'a"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("'b"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("'c"), std::string::npos) << Printed;
  // ...and no general pattern traversal remains: residual functions take
  // only the dynamic data (text, and the counter for the search loop) —
  // no pattern parameter survives.
  for (const Definition &D : Res.Residual.Defs)
    EXPECT_LE(D.Fn->params().size(), 2u) << Printed;
}

TEST(MatcherStructure, OneResidualPrefixFunctionPerPatternSuffix) {
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, workloads::matcherProgram(), "match",
                         "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.value("(a b c d)"), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  // match-prefix? memoizes per static pattern suffix: (a b c d), (b c d),
  // (c d), (d), and () — memo calls are residualized even when the body
  // folds statically, so the empty suffix is a one-liner returning #t.
  size_t PrefixFns = 0;
  for (const Definition &D : Res.Residual.Defs)
    if (D.Name.str().find("match-prefix?") == 0)
      ++PrefixFns;
  EXPECT_EQ(PrefixFns, 5u) << Res.Residual.print();
}

} // namespace
