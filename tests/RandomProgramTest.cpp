//===- tests/RandomProgramTest.cpp - Differential fuzzing -------------------===//
///
/// \file
/// Seeded random-program differential testing. The generator produces
/// terminating, error-free integer programs (non-recursive call DAGs over
/// +, -, *, comparisons, lets, conditionals, and directly applied
/// lambdas), so every engine must produce the *same fixnum*:
///
///   reference interpreter ≡ stock compiler ≡ ANF compiler ≡ direct
///   emitter ≡ residual program under any division (mix equation), and
///   fused object code ≡ compiled residual source, byte for byte.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/DirectAnfCompiler.h"
#include "sexp/WellKnown.h"
#include "syntax/AnfCheck.h"
#include "vm/Verify.h"

#include <random>

using namespace pecomp;
using namespace pecomp::test;

namespace {

/// Generates random integer-valued Core Scheme programs.
class ProgramGen {
public:
  ProgramGen(uint32_t Seed, ExprFactory &F) : Rng(Seed), F(F) {}

  Program generate() {
    Program P;
    size_t NumDefs = 2 + Rng() % 4;
    for (size_t I = 0; I != NumDefs; ++I) {
      std::vector<Symbol> Params;
      size_t NumParams = 1 + Rng() % 3;
      for (size_t J = 0; J != NumParams; ++J)
        Params.push_back(Symbol::intern("p" + std::to_string(I) + "_" +
                                        std::to_string(J)));
      // Bodies may call only *earlier* definitions: the call graph is a
      // DAG, so everything terminates.
      const Expr *Body = genInt(3, Params, P);
      Symbol Name = Symbol::intern("fn" + std::to_string(I));
      P.Defs.push_back({Name, F.lambda(Params, Body)});
    }
    return P;
  }

  int64_t randomArg() { return static_cast<int64_t>(Rng() % 41) - 20; }

private:
  /// An integer-valued expression.
  const Expr *genInt(unsigned Depth, const std::vector<Symbol> &Scope,
                     const Program &Defined) {
    if (Depth == 0)
      return genLeaf(Scope);
    switch (Rng() % 8) {
    case 0:
      return genLeaf(Scope);
    case 1:
    case 2: {
      PrimOp Op = std::array{PrimOp::Add, PrimOp::Sub,
                             PrimOp::Mul}[Rng() % 3];
      return F.primApp(Op, {genInt(Depth - 1, Scope, Defined),
                            genInt(Depth - 1, Scope, Defined)});
    }
    case 3: {
      // (if <comparison> e1 e2)
      PrimOp Cmp = std::array{PrimOp::Lt, PrimOp::NumEq, PrimOp::Ge,
                              PrimOp::ZeroP}[Rng() % 4];
      const Expr *Test =
          Cmp == PrimOp::ZeroP
              ? F.primApp(Cmp, {genInt(Depth - 1, Scope, Defined)})
              : F.primApp(Cmp, {genInt(Depth - 1, Scope, Defined),
                                genInt(Depth - 1, Scope, Defined)});
      return F.ifExpr(Test, genInt(Depth - 1, Scope, Defined),
                      genInt(Depth - 1, Scope, Defined));
    }
    case 4: {
      // (let (x e1) e2)
      Symbol X = Symbol::fresh("v");
      std::vector<Symbol> Inner = Scope;
      Inner.push_back(X);
      return F.let(X, genInt(Depth - 1, Scope, Defined),
                   genInt(Depth - 1, Inner, Defined));
    }
    case 5: {
      // Directly applied lambda.
      size_t N = 1 + Rng() % 2;
      std::vector<Symbol> Params;
      std::vector<const Expr *> Args;
      std::vector<Symbol> Inner = Scope;
      for (size_t I = 0; I != N; ++I) {
        Symbol X = Symbol::fresh("a");
        Params.push_back(X);
        Inner.push_back(X);
        Args.push_back(genInt(Depth - 1, Scope, Defined));
      }
      return F.app(F.lambda(Params, genInt(Depth - 1, Inner, Defined)),
                   std::move(Args));
    }
    case 6: {
      // Call an earlier definition, if any.
      if (Defined.Defs.empty())
        return genLeaf(Scope);
      const Definition &Callee =
          Defined.Defs[Rng() % Defined.Defs.size()];
      std::vector<const Expr *> Args;
      for (size_t I = 0; I != Callee.Fn->params().size(); ++I)
        Args.push_back(genInt(Depth - 1, Scope, Defined));
      return F.app(F.var(Callee.Name), std::move(Args));
    }
    default:
      return genLeaf(Scope);
    }
  }

  const Expr *genLeaf(const std::vector<Symbol> &Scope) {
    if (!Scope.empty() && Rng() % 2)
      return F.var(Scope[Rng() % Scope.size()]);
    return F.constant(
        wellknown::fixnum(static_cast<int64_t>(Rng() % 21) - 10));
  }

  std::mt19937 Rng;
  ExprFactory &F;
};

class RandomDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomDifferential, AllEnginesAgree) {
  World W;
  ProgramGen G(GetParam(), W.Exprs);
  Program P = G.generate();
  const Definition &Entry = P.Defs.back();

  std::vector<vm::Value> Args;
  for (size_t I = 0; I != Entry.Fn->params().size(); ++I)
    Args.push_back(W.num(G.randomArg()));

  PECOMP_UNWRAP(Ref, W.evalCall(P, Entry.Name.str(), Args));
  ASSERT_TRUE(Ref.isFixnum());

  PECOMP_UNWRAP(Stock, W.runStock(P, Entry.Name.str(), Args));
  expectValueEq(Stock, Ref);

  PECOMP_UNWRAP(Anf, W.runAnf(P, Entry.Name.str(), Args));
  expectValueEq(Anf, Ref);

  // Direct emitter: byte-identical to the ANF compiler, and runs.
  Program AnfP = anfConvert(P, W.Exprs);
  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators CompA(StoreA, GlobalsA);
  compiler::AnfCompiler AC(CompA);
  compiler::CompiledProgram CpA = AC.compileProgram(AnfP);
  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::DirectAnfCompiler DC(StoreB, GlobalsB);
  compiler::CompiledProgram CpB = DC.compileProgram(AnfP);
  ASSERT_EQ(CpA.Defs.size(), CpB.Defs.size());
  for (size_t I = 0; I != CpA.Defs.size(); ++I) {
    EXPECT_TRUE(vm::codeEquals(CpA.Defs[I].second, CpB.Defs[I].second));
    auto Err = vm::verifyCode(CpA.Defs[I].second);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
  PECOMP_UNWRAP(Direct, W.runCompiled(GlobalsB, CpB, Entry.Name, Args));
  expectValueEq(Direct, Ref);
}

TEST_P(RandomDifferential, MixEquationUnderRandomDivision) {
  World W;
  ProgramGen G(GetParam(), W.Exprs);
  Program P = G.generate();
  const Definition &Entry = P.Defs.back();
  std::string Source = P.print();

  // A random division: each parameter independently static or dynamic.
  std::mt19937 Rng(GetParam() * 7919 + 13);
  std::string Division;
  std::vector<std::optional<vm::Value>> SpecArgs;
  std::vector<vm::Value> FullArgs, DynArgs;
  for (size_t I = 0; I != Entry.Fn->params().size(); ++I) {
    vm::Value V = W.num(static_cast<int64_t>(Rng() % 31) - 15);
    FullArgs.push_back(V);
    if (Rng() % 2) {
      Division += 'S';
      SpecArgs.push_back(V);
    } else {
      Division += 'D';
      SpecArgs.push_back(std::nullopt);
      DynArgs.push_back(V);
    }
  }

  PECOMP_UNWRAP(Ref, W.evalCall(P, Entry.Name.str(), FullArgs));

  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, Source, Entry.Name.str(), Division));
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  EXPECT_FALSE(checkAnf(Res.Residual));
  PECOMP_UNWRAP(ViaSource,
                W.runAnf(Res.Residual, Res.Entry.str(), DynArgs));
  expectValueEq(ViaSource, Ref);

  // Fused path, byte-compared against the compiled residual.
  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators CompA(StoreA, GlobalsA);
  compiler::AnfCompiler AC(CompA);
  compiler::CompiledProgram FromSource = AC.compileProgram(Res.Residual);

  PECOMP_UNWRAP(Gen2, pgg::GeneratingExtension::create(
                          W.Heap, Source, Entry.Name.str(), Division));
  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::Compilators CompB(StoreB, GlobalsB);
  PECOMP_UNWRAP(Obj, Gen2->generateObject(CompB, SpecArgs));

  ASSERT_EQ(FromSource.Defs.size(), Obj.Residual.Defs.size());
  for (size_t I = 0; I != FromSource.Defs.size(); ++I) {
    EXPECT_TRUE(vm::codeEquals(FromSource.Defs[I].second,
                               Obj.Residual.Defs[I].second));
    auto Err = vm::verifyCode(Obj.Residual.Defs[I].second);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
  PECOMP_UNWRAP(ViaObject, W.runCompiled(GlobalsB, Obj.Residual, Obj.Entry,
                                         DynArgs));
  expectValueEq(ViaObject, Ref);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomDifferential,
                         ::testing::Range(0u, 40u));

} // namespace
