//===- tests/RandomProgramTest.cpp - Differential fuzzing -------------------===//
///
/// \file
/// Seeded random-program differential testing. The generator produces
/// terminating, error-free integer programs (non-recursive call DAGs over
/// +, -, *, comparisons, lets, conditionals, and directly applied
/// lambdas), so every engine must produce the *same fixnum*:
///
///   reference interpreter ≡ stock compiler ≡ ANF compiler ≡ direct
///   emitter ≡ residual program under any division (mix equation), and
///   fused object code ≡ compiled residual source, byte for byte.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "compiler/DirectAnfCompiler.h"
#include "fuzz/ProgramGen.h"
#include "syntax/AnfCheck.h"
#include "vm/Verify.h"

#include <random>

using namespace pecomp;
using namespace pecomp::test;
using fuzz::ProgramGen;

namespace {

class RandomDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomDifferential, AllEnginesAgree) {
  World W;
  ProgramGen G(GetParam(), W.Exprs);
  Program P = G.generate();
  const Definition &Entry = P.Defs.back();

  std::vector<vm::Value> Args;
  for (size_t I = 0; I != Entry.Fn->params().size(); ++I)
    Args.push_back(W.num(G.randomArg()));

  PECOMP_UNWRAP(Ref, W.evalCall(P, Entry.Name.str(), Args));
  ASSERT_TRUE(Ref.isFixnum());

  PECOMP_UNWRAP(Stock, W.runStock(P, Entry.Name.str(), Args));
  expectValueEq(Stock, Ref);

  PECOMP_UNWRAP(Anf, W.runAnf(P, Entry.Name.str(), Args));
  expectValueEq(Anf, Ref);

  // Direct emitter: byte-identical to the ANF compiler, and runs.
  Program AnfP = anfConvert(P, W.Exprs);
  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators CompA(StoreA, GlobalsA);
  compiler::AnfCompiler AC(CompA);
  compiler::CompiledProgram CpA = AC.compileProgram(AnfP);
  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::DirectAnfCompiler DC(StoreB, GlobalsB);
  compiler::CompiledProgram CpB = DC.compileProgram(AnfP);
  ASSERT_EQ(CpA.Defs.size(), CpB.Defs.size());
  for (size_t I = 0; I != CpA.Defs.size(); ++I) {
    EXPECT_TRUE(vm::codeEquals(CpA.Defs[I].second, CpB.Defs[I].second));
    auto Err = vm::verifyCode(CpA.Defs[I].second);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
  PECOMP_UNWRAP(Direct, W.runCompiled(GlobalsB, CpB, Entry.Name, Args));
  expectValueEq(Direct, Ref);
}

TEST_P(RandomDifferential, MixEquationUnderRandomDivision) {
  World W;
  ProgramGen G(GetParam(), W.Exprs);
  Program P = G.generate();
  const Definition &Entry = P.Defs.back();
  std::string Source = P.print();

  // A random division: each parameter independently static or dynamic.
  std::mt19937 Rng(GetParam() * 7919 + 13);
  std::string Division;
  std::vector<std::optional<vm::Value>> SpecArgs;
  std::vector<vm::Value> FullArgs, DynArgs;
  for (size_t I = 0; I != Entry.Fn->params().size(); ++I) {
    vm::Value V = W.num(static_cast<int64_t>(Rng() % 31) - 15);
    FullArgs.push_back(V);
    if (Rng() % 2) {
      Division += 'S';
      SpecArgs.push_back(V);
    } else {
      Division += 'D';
      SpecArgs.push_back(std::nullopt);
      DynArgs.push_back(V);
    }
  }

  PECOMP_UNWRAP(Ref, W.evalCall(P, Entry.Name.str(), FullArgs));

  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap, Source, Entry.Name.str(), Division));
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));
  EXPECT_FALSE(checkAnf(Res.Residual));
  PECOMP_UNWRAP(ViaSource,
                W.runAnf(Res.Residual, Res.Entry.str(), DynArgs));
  expectValueEq(ViaSource, Ref);

  // Fused path, byte-compared against the compiled residual.
  vm::CodeStore StoreA(W.Heap);
  vm::GlobalTable GlobalsA;
  compiler::Compilators CompA(StoreA, GlobalsA);
  compiler::AnfCompiler AC(CompA);
  compiler::CompiledProgram FromSource = AC.compileProgram(Res.Residual);

  PECOMP_UNWRAP(Gen2, pgg::GeneratingExtension::create(
                          W.Heap, Source, Entry.Name.str(), Division));
  vm::CodeStore StoreB(W.Heap);
  vm::GlobalTable GlobalsB;
  compiler::Compilators CompB(StoreB, GlobalsB);
  PECOMP_UNWRAP(Obj, Gen2->generateObject(CompB, SpecArgs));

  ASSERT_EQ(FromSource.Defs.size(), Obj.Residual.Defs.size());
  for (size_t I = 0; I != FromSource.Defs.size(); ++I) {
    EXPECT_TRUE(vm::codeEquals(FromSource.Defs[I].second,
                               Obj.Residual.Defs[I].second));
    auto Err = vm::verifyCode(Obj.Residual.Defs[I].second);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
  PECOMP_UNWRAP(ViaObject, W.runCompiled(GlobalsB, Obj.Residual, Obj.Entry,
                                         DynArgs));
  expectValueEq(ViaObject, Ref);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomDifferential,
                         ::testing::Range(0u, 40u));

} // namespace
