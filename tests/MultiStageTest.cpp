//===- tests/MultiStageTest.cpp - Incremental specialization ---------------===//
///
/// \file
/// The paper's incremental-specialization application (Sec. 1, citing
/// [60]): because residual programs are ordinary programs, they can be
/// specialized again. Staging must compose:
///
///   specialize(specialize(p, s1), s2) ≡ specialize(p, s1 ++ s2)
///
/// behaviourally (the residual shapes legitimately differ).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace pecomp;
using namespace pecomp::test;

namespace {

TEST(MultiStage, TwoStagesAgreeWithOneStage) {
  World W;
  const char *Src =
      "(define (poly a b x)"
      "  (+ (* a (* x x)) (+ (* b x) 7)))";

  // One stage: fix a=2 and b=3 together.
  PECOMP_UNWRAP(Gen1,
                pgg::GeneratingExtension::create(W.Heap, Src, "poly", "SSD"));
  std::optional<vm::Value> OneShot[] = {W.num(2), W.num(3), std::nullopt};
  PECOMP_UNWRAP(Res1, Gen1->generateSource(OneShot));

  // Two stages: fix a=2 first...
  PECOMP_UNWRAP(GenA,
                pgg::GeneratingExtension::create(W.Heap, Src, "poly", "SDD"));
  std::optional<vm::Value> StageA[] = {W.num(2), std::nullopt, std::nullopt};
  PECOMP_UNWRAP(ResA, GenA->generateSource(StageA));
  std::string StageAText = ResA.Residual.print();

  // ...then specialize the *residual* with b=3.
  PECOMP_UNWRAP(GenB, pgg::GeneratingExtension::create(
                          W.Heap, StageAText, ResA.Entry.str(), "SD"));
  std::optional<vm::Value> StageB[] = {W.num(3), std::nullopt};
  PECOMP_UNWRAP(ResB, GenB->generateSource(StageB));

  for (int64_t X : {-5, 0, 1, 4, 11}) {
    PECOMP_UNWRAP(One, W.runAnf(Res1.Residual, Res1.Entry.str(),
                                {W.num(X)}));
    PECOMP_UNWRAP(Two, W.runAnf(ResB.Residual, ResB.Entry.str(),
                                {W.num(X)}));
    expectValueEq(One, Two);
    expectValueEq(One, W.num(2 * X * X + 3 * X + 7));
  }
}

TEST(MultiStage, RestagingAnInterpreterSpecialization) {
  // Stage 1 compiles a MIXWELL program (interpreter x program); stage 2
  // specializes the *compiled* program with respect to part of its own
  // input — incremental specialization across the Futamura boundary.
  World W;
  vm::Value Program = W.value(
      "((main (n xs) (call scale (var n) (var xs)))"
      " (scale (n xs) (if (op1 null? (var xs)) (const ())"
      "   (op2 cons (op2 * (var n) (op1 car (var xs)))"
      "             (call scale (var n) (op1 cdr (var xs)))))))");

  PECOMP_UNWRAP(Gen1, pgg::GeneratingExtension::create(
                          W.Heap, workloads::mixwellInterpreter(),
                          "mixwell-run", "SD"));
  std::optional<vm::Value> Stage1[] = {Program, std::nullopt};
  PECOMP_UNWRAP(Res1, Gen1->generateSource(Stage1));
  std::string CompiledText = Res1.Residual.print();

  // The compiled program's entry takes the argument list (n xs). Stage 2:
  // everything still dynamic (the argument structure is consumed at run
  // time), but respecialization of compiled code must at least be
  // *possible* and correct.
  PECOMP_UNWRAP(Gen2, pgg::GeneratingExtension::create(
                          W.Heap, CompiledText, Res1.Entry.str(), "D"));
  std::optional<vm::Value> Stage2[] = {std::nullopt};
  PECOMP_UNWRAP(Res2, Gen2->generateSource(Stage2));

  vm::Value In = W.value("(3 (1 2 3))");
  PECOMP_UNWRAP(A, W.runAnf(Res1.Residual, Res1.Entry.str(), {In}));
  PECOMP_UNWRAP(B, W.runAnf(Res2.Residual, Res2.Entry.str(), {In}));
  expectValueEq(A, B);
  expectValueEq(A, W.value("(3 6 9)"));
}

} // namespace
