//===- tests/JitTest.cpp - Native-tier template JIT unit tests --------------===//
///
/// \file
/// The per-block template JIT (vm/Jit.h) below the dispatch-parity bar
/// DecodedDispatchTest already holds it to: compile-shape invariants
/// (which blocks compile, where re-entry is legal), the MakeClosure
/// block-granularity fallback seam, exact fuel accounting across the
/// bail path (a bailed block must charge nothing), and GC safety during
/// native call-outs (the native code shares the machine's ValueStack, so
/// a collection triggered inside a prim must see every live value).
///
/// Every behavioral assertion runs on any host: where the tier is absent
/// (vm::jitAvailable() false) the JIT knob is a no-op and the
/// jit-on/jit-off comparisons become trivially true. Assertions about
/// the compiled artifact itself are gated on jitAvailable().
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "vm/Jit.h"
#include "vm/Profile.h"
#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::test;
using vm::TrapKind;
using vm::Value;

namespace {

/// One linked program ready to call, with the machine's knobs exposed.
struct Engine {
  explicit Engine(World &W, bool NativeJit, uint64_t Fuel = 50'000'000,
                  size_t MaxHeapBytes = 0)
      : W(W), Store(W.Heap), Comp(Store, Globals), M(W.Heap) {
    vm::Limits L;
    L.Fuel = Fuel;
    L.MaxHeapBytes = MaxHeapBytes;
    M.setLimits(L);
    M.setDecodedDispatch(true);
    M.setFusion(true);
    M.setNativeJit(NativeJit);
    M.setProfile(&Prof);
  }

  /// Compiles and links \p Source; aborts the test on failure.
  void load(const std::string &Source) {
    auto P = W.parseAnf(Source);
    ASSERT_TRUE(P.ok()) << P.error().render();
    compiler::AnfCompiler AC(Comp);
    CP = AC.compileProgram(*P);
    auto Linked = compiler::linkProgramVerified(M, Globals, CP);
    ASSERT_TRUE(Linked.ok()) << Linked.error().render();
  }

  Result<Value> call(const char *Fn, std::vector<Value> Args) {
    return W.pinned(compiler::callGlobal(M, Globals, Symbol::intern(Fn),
                                         Args));
  }

  const vm::CodeObject *find(const char *Fn) {
    return CP.find(Symbol::intern(Fn));
  }

  World &W;
  vm::CodeStore Store;
  vm::GlobalTable Globals;
  compiler::Compilators Comp;
  compiler::CompiledProgram CP;
  vm::Machine M;
  vm::Profile Prof;
};

const char *SpinSource = R"((define (spin n acc)
                              (if (< n 1) acc (spin (- n 1) (* acc 3)))))";

/// Runs (Fn . Args) twice — native tier on and off — under the same
/// limits, and requires the full trap-parity aspect set to match: ok-ness
/// and value, or trap kind + faulting PC + opcode + message, plus the
/// per-source-instruction count either way.
void expectJitParity(const std::string &Source, const char *Fn,
                     std::vector<int64_t> Args, uint64_t Fuel,
                     size_t MaxHeapBytes = 0) {
  World WOn, WOff;
  Engine On(WOn, /*NativeJit=*/true, Fuel, MaxHeapBytes);
  Engine Off(WOff, /*NativeJit=*/false, Fuel, MaxHeapBytes);
  On.load(Source);
  Off.load(Source);
  std::vector<Value> V;
  for (int64_t A : Args)
    V.push_back(Value::fixnum(A));
  Result<Value> ROn = On.call(Fn, V);
  Result<Value> ROff = Off.call(Fn, V);
  ASSERT_EQ(ROn.ok(), ROff.ok())
      << (ROn.ok() ? ROff.error().render() : ROn.error().render());
  if (ROn.ok()) {
    EXPECT_EQ(vm::valueToString(*ROn), vm::valueToString(*ROff));
  } else {
    EXPECT_EQ(ROn.error().render(), ROff.error().render());
    ASSERT_TRUE(On.M.lastTrap() && Off.M.lastTrap());
    EXPECT_EQ(On.M.lastTrap()->Kind, Off.M.lastTrap()->Kind);
    EXPECT_EQ(On.M.lastTrap()->PC, Off.M.lastTrap()->PC);
    EXPECT_EQ(On.M.lastTrap()->Opcode, Off.M.lastTrap()->Opcode);
  }
  EXPECT_EQ(On.Prof.instructions(), Off.Prof.instructions())
      << "fuel/opcode accounting drifted (fuel " << Fuel << ")";
}

// -- Compile shape ----------------------------------------------------------

TEST(Jit, AvailabilityMatchesCompileResult) {
  World W;
  Engine E(W, true);
  E.load(SpinSource);
  const vm::CodeObject *CO = E.find("spin");
  ASSERT_NE(CO, nullptr);
  ASSERT_NE(CO->decoded(), nullptr);
  const vm::JitCode *JC = CO->jit();
  EXPECT_EQ(JC != nullptr, vm::jitAvailable());
  EXPECT_TRUE(CO->jitAttempted());
}

TEST(Jit, BlockEntriesOnlyAtLeaders) {
  if (!vm::jitAvailable())
    GTEST_SKIP() << "native tier not built on this host";
  World W;
  Engine E(W, true);
  E.load(SpinSource);
  const vm::CodeObject *CO = E.find("spin");
  const vm::JitCode *JC = CO->jit();
  ASSERT_NE(JC, nullptr);
  EXPECT_GT(JC->compiledBlocks(), 0u);
  EXPECT_GT(JC->compiledInsns(), 0u);
  EXPECT_GT(JC->codeBytes(), 0u);
  // Index 0 is always a leader; an entry exists iff its block compiled.
  EXPECT_NE(JC->blockEntry(0), nullptr);
  // Out-of-range indices are never enterable.
  EXPECT_EQ(JC->blockEntry(CO->decoded()->Insns.size()), nullptr);
  // Entries exist only at block leaders: mid-block re-entry would skip
  // the block-entry fuel and stack-capacity governance.
  size_t Entries = 0;
  for (size_t I = 0; I != CO->decoded()->Insns.size(); ++I)
    Entries += JC->blockEntry(I) != nullptr;
  EXPECT_LE(Entries, JC->compiledBlocks());
}

TEST(Jit, MakeClosureBlocksStayInterpreted) {
  World W;
  Engine E(W, true);
  // The lambda forces a MakeClosure in the entry's instruction stream;
  // that block must fall back to the decoded loop while the blocks after
  // the (non-tail) call still run natively.
  E.load(R"((define (mk n) (+ ((lambda (x) (+ x n)) 5) 1)))");
  Result<Value> R = E.call("mk", {Value::fixnum(7)});
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_EQ(vm::valueToString(*R), "13");
  if (vm::jitAvailable()) {
    const vm::JitCode *JC = E.find("mk")->jit();
    ASSERT_NE(JC, nullptr);
    // The closure-creating block is excluded from compilation.
    EXPECT_LT(JC->compiledInsns(), E.find("mk")->decoded()->Insns.size());
  }
}

TEST(Jit, WholeFunctionUncompilableStillRuns) {
  World W;
  Engine E(W, true);
  // Entry is nothing but closure creation + call: every block contains a
  // MakeClosure or runs through one, so the tier contributes little or
  // nothing — and the result must be identical anyway.
  E.load(R"((define (f n)
              ((lambda (a) ((lambda (b) (+ a b)) (* a 2))) n)))");
  Result<Value> R = E.call("f", {Value::fixnum(4)});
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_EQ(vm::valueToString(*R), "12");
}

// -- Fuel accounting across the bail seam -----------------------------------

TEST(Jit, FuelSweepExactParity) {
  // Every budget from starvation through completion: the bail path must
  // charge nothing for the abandoned block (the decoded loop re-runs it
  // and traps at the exact source instruction), so instruction counts and
  // trap PCs agree at every single budget.
  for (uint64_t Fuel = 1; Fuel <= 90; ++Fuel)
    expectJitParity(SpinSource, "spin", {6, 1}, Fuel);
}

TEST(Jit, FuelSweepAcrossCallOuts) {
  // Same bar on a program whose hot path crosses Call/Return call-outs
  // (non-tail recursion) rather than staying inside one native frame.
  const char *Source = R"((define (sum n)
                            (if (< n 1) 0 (+ n (sum (- n 1))))))";
  for (uint64_t Fuel = 1; Fuel <= 70; ++Fuel)
    expectJitParity(Source, "sum", {5}, Fuel);
}

TEST(Jit, BailDoesNotLiveLock) {
  // A budget that exhausts mid-block: the native entry bails, the decoded
  // loop re-runs the block and must trap rather than hand control back to
  // the JIT for the same block forever.
  World W;
  Engine E(W, true, /*Fuel=*/64);
  E.load(SpinSource);
  Result<Value> R = E.call("spin", {Value::fixnum(100000), Value::fixnum(1)});
  ASSERT_FALSE(R.ok());
  ASSERT_TRUE(E.M.lastTrap());
  EXPECT_EQ(E.M.lastTrap()->Kind, TrapKind::FuelExhausted);
  EXPECT_EQ(E.Prof.instructions(), 64u);
  if (vm::jitAvailable()) {
    EXPECT_GT(E.Prof.JitEnters, 0u);
    EXPECT_GT(E.Prof.JitBails, 0u);
  }
}

// -- GC safety during native call-outs --------------------------------------

TEST(Jit, GcDuringNativeCallOutSeesStackValues) {
  // cons allocates inside a prim call-out while natively-pushed values
  // sit on the shared ValueStack; with a collection forced on every
  // allocation, any value the native code failed to publish (a stale
  // Size, a register-only live value) would be swept and the structure
  // corrupted. Compare against the jit-off run for the full value.
  const char *Source = R"((define (build n acc)
                            (if (< n 1) acc
                                (build (- n 1) (cons n acc)))))";
  World WOn, WOff;
  Engine On(WOn, true), Off(WOff, false);
  On.load(Source);
  Off.load(Source);
  WOn.Heap.setStressMode(true);
  WOff.Heap.setStressMode(true);
  Result<Value> ROn = On.call("build", {Value::fixnum(40), Value::nil()});
  Result<Value> ROff = Off.call("build", {Value::fixnum(40), Value::nil()});
  WOn.Heap.setStressMode(false);
  WOff.Heap.setStressMode(false);
  ASSERT_TRUE(ROn.ok()) << ROn.error().render();
  ASSERT_TRUE(ROff.ok()) << ROff.error().render();
  EXPECT_EQ(vm::valueToString(*ROn), vm::valueToString(*ROff));
  EXPECT_EQ(On.Prof.instructions(), Off.Prof.instructions());
}

TEST(Jit, HeapExhaustionParityUnderNativeTier) {
  // A budget small enough that cons faults the heap mid-run: the trap
  // context must match the interpreted run exactly.
  const char *Source = R"((define (build n acc)
                            (if (< n 1) acc
                                (build (- n 1) (cons n acc)))))";
  expectJitParity(Source, "build", {100000, -1}, 50'000'000,
                  /*MaxHeapBytes=*/64 * 1024);
}

// -- Profile attribution ----------------------------------------------------

TEST(Jit, ProfileCountsNativeTier) {
  if (!vm::jitAvailable())
    GTEST_SKIP() << "native tier not built on this host";
  World W;
  Engine E(W, true);
  E.load(SpinSource);
  Result<Value> R = E.call("spin", {Value::fixnum(10), Value::fixnum(1)});
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_EQ(vm::valueToString(*R), "59049");
  EXPECT_GT(E.Prof.JitEnters, 0u);
  EXPECT_EQ(E.Prof.JitBails, 0u);
  // Eager link-time compilation attributes its latency to the profile.
  EXPECT_GT(E.Prof.JitNanos, 0u);
}

TEST(Jit, SecondCallReusesCompiledCode) {
  if (!vm::jitAvailable())
    GTEST_SKIP() << "native tier not built on this host";
  World W;
  Engine E(W, true);
  E.load(SpinSource);
  const vm::JitCode *First = E.find("spin")->jit();
  ASSERT_NE(First, nullptr);
  Result<Value> R1 = E.call("spin", {Value::fixnum(5), Value::fixnum(1)});
  Result<Value> R2 = E.call("spin", {Value::fixnum(5), Value::fixnum(1)});
  ASSERT_TRUE(R1.ok() && R2.ok());
  EXPECT_EQ(vm::valueToString(*R1), vm::valueToString(*R2));
  // The cache is per-CodeObject and compile-once.
  EXPECT_EQ(E.find("spin")->jit(), First);
}

TEST(Jit, KnobOffNeverEntersNative) {
  World W;
  Engine E(W, /*NativeJit=*/false);
  E.load(SpinSource);
  Result<Value> R = E.call("spin", {Value::fixnum(10), Value::fixnum(1)});
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_EQ(E.Prof.JitEnters, 0u);
  EXPECT_EQ(E.Prof.JitBails, 0u);
  EXPECT_EQ(E.Prof.JitFallbacks, 0u);
}

} // namespace
