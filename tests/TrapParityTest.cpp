//===- tests/TrapParityTest.cpp - VM/oracle error-class parity --------------===//
///
/// \file
/// Differential testing of the fault model: for programs that fail, the
/// compiled path (VM) and the reference interpreter must report the same
/// error *class* (the TrapKind carried in Error::code()), even though
/// their messages differ. This extends the repo's semantic-equivalence
/// testing from values to faults — a residual program that traps must
/// trap for the same reason the source program does under the oracle.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/LargeStack.h"
#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::test;
using vm::TrapKind;
using vm::Value;

namespace {

/// Governor settings applied to both engines (0 = unlimited).
struct Governors {
  uint64_t Fuel = 0;
  size_t MaxFramesOrDepth = 0;
  size_t MaxHeapBytes = 0;
};

/// Runs (Fn Arg) compiled on the VM; fresh world per run for isolation.
Result<Value> runVm(const std::string &Source, const char *Fn,
                    const char *Arg, const Governors &G) {
  World W;
  auto P = W.parseAnf(Source);
  if (!P)
    return P.takeError();
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(*P);
  vm::Machine M(W.Heap);
  vm::Limits Lim;
  Lim.Fuel = G.Fuel ? G.Fuel : 50'000'000;
  if (G.MaxFramesOrDepth)
    Lim.MaxFrames = G.MaxFramesOrDepth;
  Lim.MaxHeapBytes = G.MaxHeapBytes;
  M.setLimits(Lim);
  auto Linked = compiler::linkProgramVerified(M, Globals, CP);
  if (!Linked)
    return Linked.takeError();
  return compiler::callGlobal(M, Globals, Symbol::intern(Fn),
                              {{W.value(Arg)}});
}

/// Runs (Fn Arg) under the reference interpreter with matching governors.
/// The interpreter recurses on the C++ stack, and the heap-exhaustion
/// case legitimately reaches thousands of frames before faulting, so the
/// evaluation runs on the dedicated large stack (like the specializer).
Result<Value> runOracle(const std::string &Source, const char *Fn,
                        const char *Arg, const Governors &G) {
  World W;
  auto P = W.parse(Source);
  if (!P)
    return P.takeError();
  if (G.MaxHeapBytes)
    W.Heap.setMaxBytes(G.MaxHeapBytes);
  eval::Interp I(W.Heap, *P);
  if (G.Fuel)
    I.setFuel(G.Fuel);
  if (G.MaxFramesOrDepth)
    I.setMaxDepth(G.MaxFramesOrDepth);
  return runOnLargeStack([&]() -> Result<Value> {
    return I.callFunction(Symbol::intern(Fn), {{W.value(Arg)}});
  });
}

struct ParityCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  const char *Arg; // datum
  TrapKind Expected;
  Governors G;
};

const ParityCase ParityCases[] = {
    {"undefined_global",
     "(define (f x) (mystery x))", "f", "1",
     TrapKind::UndefinedGlobal, {}},
    {"non_procedure_application",
     "(define (f x) (x 1))", "f", "5",
     TrapKind::TypeError, {}},
    {"internal_arity_mismatch",
     "(define (g a b) a)"
     "(define (f x) ((lambda (p) (p x)) g))",
     "f", "1", TrapKind::ArityMismatch, {}},
    {"car_of_a_number",
     "(define (f x) (car x))", "f", "5",
     TrapKind::TypeError, {}},
    {"quotient_by_zero",
     "(define (f x) (quotient 10 x))", "f", "0",
     TrapKind::DivideByZero, {}},
    {"remainder_by_zero",
     "(define (f x) (remainder 10 x))", "f", "0",
     TrapKind::DivideByZero, {}},
    {"divergence_exhausts_fuel",
     "(define (f x) (f x))", "f", "0",
     TrapKind::FuelExhausted, {/*Fuel=*/20'000, 0, 0}},
    {"deep_recursion_overflows_frames",
     "(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1)))))", "f", "100000",
     TrapKind::FrameOverflow, {0, /*MaxFramesOrDepth=*/128, 0}},
    {"allocation_exhausts_heap",
     "(define (f n) (if (zero? n) '() (cons n (f (- n 1)))))", "f", "200000",
     TrapKind::HeapExhausted, {0, 0, /*MaxHeapBytes=*/256 * 1024}},
};

class TrapParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(TrapParity, VmAndOracleReportTheSameErrorClass) {
  const ParityCase &C = GetParam();
  Result<Value> Vm = runVm(C.Source, C.Fn, C.Arg, C.G);
  Result<Value> Oracle = runOracle(C.Source, C.Fn, C.Arg, C.G);

  ASSERT_FALSE(Vm.ok()) << "VM unexpectedly succeeded";
  ASSERT_FALSE(Oracle.ok()) << "oracle unexpectedly succeeded";
  EXPECT_EQ(vm::trapKindOf(Vm.error()), C.Expected)
      << "vm: " << Vm.error().render();
  EXPECT_EQ(vm::trapKindOf(Oracle.error()), C.Expected)
      << "oracle: " << Oracle.error().render();
}

INSTANTIATE_TEST_SUITE_P(Traps, TrapParity, ::testing::ValuesIn(ParityCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(TrapParityUser, UserErrorsStayUnclassifiedOnBothEngines) {
  // The `error` primitive is a user-level failure, not a trap: both
  // engines must report it with code 0 so callers can tell "the program
  // said error" apart from "the program is broken".
  const char *Source = "(define (f x) (error 'boom))";
  Result<Value> Vm = runVm(Source, "f", "1", {});
  Result<Value> Oracle = runOracle(Source, "f", "1", {});
  ASSERT_FALSE(Vm.ok());
  ASSERT_FALSE(Oracle.ok());
  EXPECT_EQ(vm::trapKindOf(Vm.error()), TrapKind::None)
      << Vm.error().render();
  EXPECT_EQ(vm::trapKindOf(Oracle.error()), TrapKind::None)
      << Oracle.error().render();
  EXPECT_NE(Vm.error().message().find("boom"), std::string::npos);
  EXPECT_NE(Oracle.error().message().find("boom"), std::string::npos);
}

TEST(TrapParityResidual, ResidualProgramsPreserveFaultClasses) {
  // Specialization must not change *why* a program fails: the residual
  // of a faulting program faults with the same class on both engines.
  World W;
  PECOMP_UNWRAP(Gen, pgg::GeneratingExtension::create(
                         W.Heap,
                         "(define (f s d) (quotient s (car d)))",
                         "f", "SD"));
  std::optional<vm::Value> SpecArgs[] = {W.num(10), std::nullopt};
  PECOMP_UNWRAP(Res, Gen->generateSource(SpecArgs));

  // (car d) of a number: TypeError from the residual under the oracle.
  Result<Value> Oracle =
      W.evalCall(Res.Residual, Res.Entry.str(), {W.num(3)});
  ASSERT_FALSE(Oracle.ok());
  EXPECT_EQ(vm::trapKindOf(Oracle.error()), TrapKind::TypeError)
      << Oracle.error().render();

  // And the same class compiled on the VM.
  Result<Value> Vm = W.runAnf(Res.Residual, Res.Entry.str(), {W.num(3)});
  ASSERT_FALSE(Vm.ok());
  EXPECT_EQ(vm::trapKindOf(Vm.error()), TrapKind::TypeError)
      << Vm.error().render();
}

} // namespace
